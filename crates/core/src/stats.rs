//! Exploration statistics and the shared terminal-state collector.

use crate::bug::{BugKind, BugReport};
use crate::config::ExploreConfig;
use lazylocks_hbr::{ClockEngine, HbMode};
use lazylocks_model::{Program, ThreadId};
use lazylocks_runtime::{Event, ExecPhase, Executor};
use std::collections::HashSet;
use std::time::Duration;

/// Counters reported by every exploration strategy.
///
/// The four headline counters obey the paper's §3 inequality on every
/// benchmark (asserted by [`ExploreStats::check_inequality`] and by the
/// integration test suite):
///
/// ```text
/// #states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules ≤ schedule_limit
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Complete schedules executed.
    pub schedules: usize,
    /// Total visible events executed (across all schedules).
    pub events: u64,
    /// Distinct terminal states (fingerprints).
    pub unique_states: usize,
    /// Distinct terminal regular happens-before relations.
    pub unique_hbrs: usize,
    /// Distinct terminal lazy happens-before relations.
    pub unique_lazy_hbrs: usize,
    /// Terminal executions that deadlocked.
    pub deadlocks: usize,
    /// Terminal executions with at least one fault.
    pub faulted_schedules: usize,
    /// Longest schedule seen.
    pub max_depth: usize,
    /// `true` if the schedule limit stopped the exploration (the
    /// "underlined benchmark" marker of the paper's figures).
    pub limit_hit: bool,
    /// `true` if the exploration was stopped early by a cancellation
    /// token, wall-clock deadline or observer vote (see
    /// [`ExploreSession`](crate::ExploreSession)) — the cooperative
    /// counterpart of `limit_hit`.
    pub cancelled: bool,
    /// Subtrees pruned by the prefix-HBR cache (caching strategies only).
    pub cache_prunes: usize,
    /// Subtrees pruned by sleep sets (DPOR only).
    pub sleep_prunes: usize,
    /// Choices skipped by the preemption bound.
    pub bound_prunes: usize,
    /// Runs abandoned for exceeding `max_run_length`.
    pub truncated_runs: usize,
    /// Earlier events examined as race-partner candidates by DPOR's race
    /// detection (other strategies leave it 0). With the indexed detector
    /// this counts only actual dependence candidates — per-variable
    /// accesses and per-mutex acquisitions — rather than the full trace
    /// per step, so it grows with conflict density, not depth².
    pub events_compared: u64,
    /// Subtree roots taken off the shared work deque by the parallel DPOR
    /// engine (including the initial root item, so a single-worker run
    /// reports 1). Other strategies leave it 0.
    pub subtrees_stolen: u64,
    /// Frame bodies served from the frame pool's free list instead of
    /// being heap-cloned (DPOR-family strategies; other strategies leave
    /// it 0). In the steady state this tracks the step count: every push
    /// beyond the first full-depth descent is a pool hit.
    pub frames_pooled: u64,
    /// Worker threads the strategy ran with (0 for single-threaded
    /// strategies).
    pub workers: u32,
    /// The first bug found, with a replayable schedule.
    pub first_bug: Option<BugReport>,
    /// One witness schedule per distinct terminal state, populated only
    /// when [`ExploreConfig::collect_state_witnesses`] is set.
    ///
    /// [`ExploreConfig::collect_state_witnesses`]: crate::ExploreConfig::collect_state_witnesses
    pub state_witnesses: Vec<(u128, Vec<ThreadId>)>,
    /// One witness schedule per distinct terminal regular HBR, populated
    /// only when `collect_state_witnesses` is set.
    pub hbr_witnesses: Vec<(u128, Vec<ThreadId>)>,
    /// Wall-clock time of the exploration.
    pub wall_time: Duration,
}

impl ExploreStats {
    /// Asserts the paper's counting inequality; returns an error message on
    /// violation. (When `truncated_runs > 0` the relation between runs and
    /// relations is no longer meaningful, so the check is skipped.)
    pub fn check_inequality(&self) -> Result<(), String> {
        if self.truncated_runs > 0 {
            return Ok(());
        }
        let chain = [
            ("#states", self.unique_states),
            ("#lazy HBRs", self.unique_lazy_hbrs),
            ("#HBRs", self.unique_hbrs),
            ("#schedules", self.schedules),
        ];
        for w in chain.windows(2) {
            let ((na, a), (nb, b)) = (w[0], w[1]);
            if a > b {
                return Err(format!("{na} = {a} exceeds {nb} = {b}"));
            }
        }
        Ok(())
    }

    /// `true` if any bug (deadlock or fault) was observed.
    pub fn found_bug(&self) -> bool {
        self.first_bug.is_some()
    }

    /// Complete schedules per wall-clock second — the headline throughput
    /// of an exploration (0.0 when no time was measured).
    pub fn execs_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.schedules as f64 / secs
        } else {
            0.0
        }
    }

    /// Visible events executed per wall-clock second (0.0 when no time
    /// was measured).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// Shared leaf-processing for all strategies: counts schedules, classifies
/// terminal relations and states, records bugs, and signals when the
/// schedule budget is exhausted.
pub(crate) struct Collector {
    config: ExploreConfig,
    states: HashSet<u128>,
    hbrs: HashSet<u128>,
    lazy_hbrs: HashSet<u128>,
    /// Reusable clock engines for terminal-trace fingerprints (one per
    /// relation mode), allocated on first use and reset per trace — leaf
    /// processing stays off the allocator.
    hbr_engine: Option<ClockEngine>,
    lazy_engine: Option<ClockEngine>,
    pub(crate) stats: ExploreStats,
}

/// Whether exploration should continue after a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Continue {
    Yes,
    /// Budget exhausted or stop-on-bug triggered.
    Stop,
}

impl Collector {
    pub(crate) fn new(config: &ExploreConfig) -> Self {
        Collector {
            config: config.clone(),
            states: HashSet::new(),
            hbrs: HashSet::new(),
            lazy_hbrs: HashSet::new(),
            hbr_engine: None,
            lazy_engine: None,
            stats: ExploreStats::default(),
        }
    }

    pub(crate) fn config(&self) -> &ExploreConfig {
        &self.config
    }

    /// `true` once the schedule budget is used up.
    pub(crate) fn budget_exhausted(&self) -> bool {
        self.stats.schedules >= self.config.schedule_limit
    }

    /// Cooperative cancellation poll, called by every strategy's main
    /// loop: `true` once the config's control (token, deadline or an
    /// observer vote) asks the exploration to stop. Records the
    /// truncation in [`ExploreStats::cancelled`].
    pub(crate) fn cancel_requested(&mut self) -> bool {
        if self.stats.cancelled {
            return true;
        }
        if self.config.control.cancel_requested() {
            self.stats.cancelled = true;
            return true;
        }
        false
    }

    /// Records one terminal execution.
    pub(crate) fn record_terminal(
        &mut self,
        program: &Program,
        exec: &Executor,
        trace: &[Event],
        schedule: &[ThreadId],
    ) -> Continue {
        self.stats.schedules += 1;
        self.stats.events += trace.len() as u64;
        self.stats.max_depth = self.stats.max_depth.max(trace.len());

        if self.config.collect_states {
            let fp = exec.state_fingerprint();
            if self.states.insert(fp) && self.config.collect_state_witnesses {
                self.stats.state_witnesses.push((fp, schedule.to_vec()));
            }
            self.stats.unique_states = self.states.len();
        }
        if self.config.collect_hbrs {
            let fp = self
                .hbr_engine
                .get_or_insert_with(|| ClockEngine::for_program(HbMode::Regular, program))
                .trace_fingerprint(trace);
            if self.hbrs.insert(fp) && self.config.collect_state_witnesses {
                self.stats.hbr_witnesses.push((fp, schedule.to_vec()));
            }
            self.stats.unique_hbrs = self.hbrs.len();
        }
        if self.config.collect_lazy_hbrs {
            let fp = self
                .lazy_engine
                .get_or_insert_with(|| ClockEngine::for_program(HbMode::Lazy, program))
                .trace_fingerprint(trace);
            self.lazy_hbrs.insert(fp);
            self.stats.unique_lazy_hbrs = self.lazy_hbrs.len();
        }

        let mut bug: Option<BugKind> = None;
        if let ExecPhase::Deadlock { waiting } = exec.phase() {
            self.stats.deadlocks += 1;
            bug = Some(BugKind::Deadlock { waiting });
        }
        if !exec.faults().is_empty() {
            self.stats.faulted_schedules += 1;
            if bug.is_none() {
                bug = Some(BugKind::Fault(exec.faults()[0].clone()));
            }
        }
        if let Some(kind) = bug {
            let report = BugReport {
                kind,
                schedule: schedule.to_vec(),
                trace_len: trace.len(),
            };
            self.config.control.note_bug(&report);
            if self.stats.first_bug.is_none() {
                self.stats.first_bug = Some(report);
            }
            if self.config.stop_on_bug {
                return Continue::Stop;
            }
        }

        self.config.control.note_schedule(&self.stats);
        if self.cancel_requested() {
            return Continue::Stop;
        }
        if self.budget_exhausted() {
            self.stats.limit_hit = true;
            return Continue::Stop;
        }
        Continue::Yes
    }

    /// Records a run abandoned for exceeding the run-length cap.
    pub(crate) fn record_truncated(&mut self) {
        self.stats.truncated_runs += 1;
    }

    /// Finalises the stats (strategies add their wall time themselves).
    pub(crate) fn into_stats(self) -> ExploreStats {
        self.stats
    }

    /// Merges another collector's raw sets and counters into this one
    /// (used by the parallel explorer).
    pub(crate) fn merge(&mut self, other: Collector) {
        self.states.extend(other.states);
        self.hbrs.extend(other.hbrs);
        self.lazy_hbrs.extend(other.lazy_hbrs);
        self.stats.schedules += other.stats.schedules;
        self.stats.events += other.stats.events;
        self.stats.deadlocks += other.stats.deadlocks;
        self.stats.faulted_schedules += other.stats.faulted_schedules;
        self.stats.max_depth = self.stats.max_depth.max(other.stats.max_depth);
        self.stats.limit_hit |= other.stats.limit_hit;
        self.stats.cancelled |= other.stats.cancelled;
        self.stats.cache_prunes += other.stats.cache_prunes;
        self.stats.sleep_prunes += other.stats.sleep_prunes;
        self.stats.bound_prunes += other.stats.bound_prunes;
        self.stats.truncated_runs += other.stats.truncated_runs;
        self.stats.events_compared += other.stats.events_compared;
        self.stats.subtrees_stolen += other.stats.subtrees_stolen;
        self.stats.frames_pooled += other.stats.frames_pooled;
        self.stats.workers = self.stats.workers.max(other.stats.workers);
        if self.stats.first_bug.is_none() {
            self.stats.first_bug = other.stats.first_bug;
        }
        self.stats
            .state_witnesses
            .extend(other.stats.state_witnesses);
        self.stats.hbr_witnesses.extend(other.stats.hbr_witnesses);
        self.stats.unique_states = self.states.len();
        self.stats.unique_hbrs = self.hbrs.len();
        self.stats.unique_lazy_hbrs = self.lazy_hbrs.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inequality_check_passes_on_consistent_counts() {
        let stats = ExploreStats {
            schedules: 10,
            unique_states: 2,
            unique_lazy_hbrs: 3,
            unique_hbrs: 5,
            ..ExploreStats::default()
        };
        assert!(stats.check_inequality().is_ok());
    }

    #[test]
    fn inequality_check_catches_violations() {
        let stats = ExploreStats {
            schedules: 10,
            unique_states: 7,
            unique_lazy_hbrs: 3,
            unique_hbrs: 5,
            ..ExploreStats::default()
        };
        let err = stats.check_inequality().unwrap_err();
        assert!(err.contains("#states"));
    }

    #[test]
    fn inequality_check_skipped_when_truncated() {
        let stats = ExploreStats {
            schedules: 1,
            unique_states: 5,
            truncated_runs: 1,
            ..ExploreStats::default()
        };
        assert!(stats.check_inequality().is_ok());
    }
}
