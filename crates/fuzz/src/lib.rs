//! # lazylocks-fuzz — grammar-directed program generation and a
//! differential exploration oracle.
//!
//! The curated 79-benchmark corpus pins known behaviours; this crate
//! manufactures *adversarial* guest programs and cross-checks every
//! registered exploration strategy against exhaustive ground truth, in the
//! swarm/differential style of Chatterjee et al.'s value-centric DPOR
//! evaluation. Four pieces:
//!
//! * [`gen`] — deterministic program generation through
//!   [`lazylocks_model::ProgramBuilder`], organised around named
//!   [`ShapeProfile`]s (lock-heavy, data-race-rich, deadlock-prone,
//!   branchy, wide-fan-out) with a size dial, so each corpus slice
//!   stresses a different explorer code path;
//! * [`oracle`] — the differential oracle: exhaustive DFS establishes the
//!   exact terminal-state and HBR-class fingerprint sets, and every
//!   strategy is then held to its documented [`Agreement`] contract, with
//!   structured [`Disagreement`] diagnoses on any broken promise;
//! * [`shrink`] — program-level delta debugging (threads → instructions →
//!   operands) that reduces a disagreeing or buggy program to a
//!   near-minimal repro while the failure class keeps reproducing,
//!   composing with the schedule-level
//!   [`minimize_schedule`](lazylocks::minimize_schedule);
//! * [`harness`] — the fuzz loop behind the CLI `fuzz` subcommand:
//!   deterministic corpus, per-case progress, cooperative cancellation
//!   through session observers, and persistence of shrunk repros as
//!   replayable [`lazylocks_trace`] artifacts.
//!
//! ```
//! use lazylocks::{CancelToken, StrategyRegistry};
//! use lazylocks_fuzz::{default_oracle_specs, run_fuzz, FuzzConfig, ShapeProfile};
//!
//! let config = FuzzConfig {
//!     profiles: vec![ShapeProfile::DataRaceRich],
//!     cases: 3,
//!     seed: 7,
//!     budget: 10_000,
//!     max_size: 1,
//!     shrink: true,
//! };
//! let report = run_fuzz(
//!     &config,
//!     &StrategyRegistry::default(),
//!     &default_oracle_specs(),
//!     None,
//!     &CancelToken::new(),
//!     |_| {},
//! )
//! .unwrap();
//! assert_eq!(report.cases.len(), 3);
//! assert_eq!(report.total_disagreements(), 0);
//! ```

pub mod gen;
pub mod harness;
pub mod oracle;
pub mod shrink;

pub use gen::{corpus, generate, CorpusCase, ShapeProfile, MAX_SIZE};
pub use harness::{
    run_fuzz, run_fuzz_with, CaseReport, CaseStatus, DfsSummary, FuzzConfig, FuzzReport, Repro,
};
pub use oracle::{
    check_strategy, default_oracle_specs, differential_check, ground_truth, Agreement,
    DifferentialCase, DifferentialVerdict, Disagreement, DisagreementKind, GroundTruth, OracleSpec,
};
pub use shrink::shrink_program;
