//! The fuzzing harness: generate → differential-check → shrink → persist.
//!
//! [`run_fuzz`] drives a deterministic corpus of generated programs
//! through the differential oracle. Every case that breaks a strategy's
//! agreement contract is shrunk to a near-minimal program (the same class
//! of disagreement must keep reproducing while pieces are deleted) and
//! persisted as a self-contained [`lazylocks_trace`] artifact: a witness
//! schedule for missed states/classes, or the DFS bug schedule (minimised
//! with [`minimize_schedule`]) for missed bug classes — either way,
//! `lazylocks replay` reproduces it from the artifact alone.
//!
//! Determinism contract: with equal [`FuzzConfig`]s, two runs produce
//! byte-identical [`FuzzReport`]s (no wall-clock data is recorded), which
//! is what lets CI diff two invocations.
//!
//! [`minimize_schedule`]: lazylocks::minimize_schedule

use crate::gen::{corpus, CorpusCase, ShapeProfile, MAX_SIZE};
use crate::oracle::{
    differential_check, DifferentialVerdict, Disagreement, DisagreementKind, OracleSpec,
};
use crate::shrink::shrink_program;
use lazylocks::obs::ids;
use lazylocks::{
    minimize_schedule, BugReport, CancelToken, MetricsHandle, SpecError, StrategyRegistry,
};
use lazylocks_model::Program;
use lazylocks_trace::{CorpusStore, TraceArtifact};
use std::path::PathBuf;

/// Configuration of one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Profiles to draw from, round-robin. Empty means all.
    pub profiles: Vec<ShapeProfile>,
    /// Total number of generated cases.
    pub cases: usize,
    /// Master seed; equal seeds give equal corpora and equal reports.
    pub seed: u64,
    /// Schedule budget per strategy run (and for ground truth; cases whose
    /// DFS exceeds it are recorded as unexhausted and skipped).
    pub budget: usize,
    /// Largest size-dial value; cases cycle `1..=max_size`.
    pub max_size: usize,
    /// Shrink disagreeing programs before persisting (on by default; the
    /// raw program is used when off).
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            profiles: ShapeProfile::ALL.to_vec(),
            cases: 100,
            seed: 0x5eed_f022,
            budget: 20_000,
            max_size: MAX_SIZE,
            shrink: true,
        }
    }
}

/// How one case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStatus {
    /// Every strategy honoured its contract; DFS found no bug.
    Agreed,
    /// Every strategy honoured its contract; the program itself has a
    /// deadlock and/or fault (expected for several profiles).
    AgreedBuggy,
    /// Ground truth exceeded the budget; nothing compared.
    Unexhausted,
    /// At least one contract was broken.
    Disagreed,
    /// The session was cancelled during this case.
    Cancelled,
}

impl CaseStatus {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CaseStatus::Agreed => "agreed",
            CaseStatus::AgreedBuggy => "agreed-buggy",
            CaseStatus::Unexhausted => "unexhausted",
            CaseStatus::Disagreed => "disagreed",
            CaseStatus::Cancelled => "cancelled",
        }
    }
}

/// A shrunk, persisted repro for one disagreement.
#[derive(Debug, Clone)]
pub struct Repro {
    /// The offending strategy spec.
    pub spec: String,
    /// The disagreement class label the repro demonstrates.
    pub kind: String,
    /// Instructions in the shrunk program.
    pub instructions: usize,
    /// Choices in the embedded schedule.
    pub schedule_len: usize,
    /// Where the artifact went (`None` when no store was given or the
    /// write failed — see `save_error`).
    pub path: Option<PathBuf>,
    /// The I/O error that prevented persisting the artifact, if any.
    pub save_error: Option<String>,
    /// The artifact itself (embedded shrunk program + schedule).
    pub artifact: TraceArtifact,
}

/// Deterministic summary counters of a DFS ground truth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DfsSummary {
    pub schedules: usize,
    pub states: usize,
    pub hbrs: usize,
    pub lazy_hbrs: usize,
    pub deadlocks: usize,
    pub faulted_schedules: usize,
}

/// One fuzzed case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Dense 0-based case index.
    pub index: usize,
    /// The shape profile the case was drawn from.
    pub profile: ShapeProfile,
    /// Size-dial value used.
    pub size: usize,
    /// The generated program's name (`fuzz-<profile>-<index>`).
    pub program_name: String,
    /// Canonical program fingerprint.
    pub fingerprint: u128,
    /// How the case ended.
    pub status: CaseStatus,
    /// DFS ground-truth counters (zeroed when unexhausted/cancelled).
    pub dfs: DfsSummary,
    /// Broken contracts, empty unless `status == Disagreed`.
    pub disagreements: Vec<Disagreement>,
    /// Shrunk repros, at most one per offending spec.
    pub repros: Vec<Repro>,
}

/// The whole session.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Per-case results, in case order.
    pub cases: Vec<CaseReport>,
    /// `true` when the cancel token stopped the session early.
    pub cancelled: bool,
}

impl FuzzReport {
    /// Number of cases with the given status.
    pub fn count(&self, status: CaseStatus) -> usize {
        self.cases.iter().filter(|c| c.status == status).count()
    }

    /// Total broken contracts across all cases.
    pub fn total_disagreements(&self) -> usize {
        self.cases.iter().map(|c| c.disagreements.len()).sum()
    }
}

/// Runs one fuzzing session. `progress` is called once per finished case
/// (in order); `cancel` stops the session cooperatively — mid-strategy,
/// via the oracle's session observers. Errs when an oracle spec does not
/// resolve against `registry` (detected on the first case).
pub fn run_fuzz(
    config: &FuzzConfig,
    registry: &StrategyRegistry,
    oracle: &[OracleSpec],
    store: Option<&CorpusStore>,
    cancel: &CancelToken,
    progress: impl FnMut(&CaseReport),
) -> Result<FuzzReport, SpecError> {
    run_fuzz_with(
        config,
        registry,
        oracle,
        store,
        cancel,
        &MetricsHandle::disabled(),
        progress,
    )
}

/// [`run_fuzz`] with session counters recorded into `metrics`
/// (`lazylocks_fuzz_cases_total` / `lazylocks_fuzz_disagreements_total`).
/// The metrics sit outside the [`FuzzReport`], so the determinism
/// contract — equal configs give byte-identical reports — is unaffected.
pub fn run_fuzz_with(
    config: &FuzzConfig,
    registry: &StrategyRegistry,
    oracle: &[OracleSpec],
    store: Option<&CorpusStore>,
    cancel: &CancelToken,
    metrics: &MetricsHandle,
    mut progress: impl FnMut(&CaseReport),
) -> Result<FuzzReport, SpecError> {
    let shard = metrics.shard();
    let mut cases = Vec::with_capacity(config.cases);
    let mut cancelled = false;

    for case in corpus(&config.profiles, config.max_size, config.cases, config.seed) {
        let CorpusCase {
            index,
            profile,
            size,
            seed: case_seed,
            program,
        } = case;
        let fingerprint = lazylocks_runtime::program_fingerprint(&program);

        let mut report = CaseReport {
            index,
            profile,
            size,
            program_name: program.name().to_string(),
            fingerprint,
            status: CaseStatus::Cancelled,
            dfs: DfsSummary::default(),
            disagreements: Vec::new(),
            repros: Vec::new(),
        };

        if cancel.is_cancelled() {
            cancelled = true;
            report.status = CaseStatus::Cancelled;
            progress(&report);
            cases.push(report);
            break;
        }

        shard.inc(ids::FUZZ_CASES);
        let case =
            differential_check(&program, registry, oracle, config.budget, case_seed, cancel)?;
        if let Some(truth) = &case.truth {
            report.dfs = DfsSummary {
                schedules: truth.outcome.stats.schedules,
                states: truth.outcome.stats.unique_states,
                hbrs: truth.outcome.stats.unique_hbrs,
                lazy_hbrs: truth.outcome.stats.unique_lazy_hbrs,
                deadlocks: truth.outcome.stats.deadlocks,
                faulted_schedules: truth.outcome.stats.faulted_schedules,
            };
        }
        match case.verdict {
            DifferentialVerdict::Agreement => {
                report.status = if report.dfs.deadlocks > 0 || report.dfs.faulted_schedules > 0 {
                    CaseStatus::AgreedBuggy
                } else {
                    CaseStatus::Agreed
                };
            }
            DifferentialVerdict::Unexhausted => report.status = CaseStatus::Unexhausted,
            DifferentialVerdict::Cancelled => {
                cancelled = true;
                report.status = CaseStatus::Cancelled;
            }
            DifferentialVerdict::Disagreements(disagreements) => {
                shard.add(ids::FUZZ_DISAGREEMENTS, disagreements.len() as u64);
                report.status = CaseStatus::Disagreed;
                report.repros = build_repros(
                    &program,
                    &disagreements,
                    registry,
                    oracle,
                    config,
                    case_seed,
                    store,
                    cancel,
                );
                report.disagreements = disagreements;
            }
        }
        let stop = matches!(report.status, CaseStatus::Cancelled);
        progress(&report);
        cases.push(report);
        if stop {
            break;
        }
    }
    Ok(FuzzReport { cases, cancelled })
}

/// Shrinks and persists one repro per offending spec.
#[allow(clippy::too_many_arguments)]
fn build_repros(
    program: &Program,
    disagreements: &[Disagreement],
    registry: &StrategyRegistry,
    oracle: &[OracleSpec],
    config: &FuzzConfig,
    case_seed: u64,
    store: Option<&CorpusStore>,
    cancel: &CancelToken,
) -> Vec<Repro> {
    // Witness-less kinds (schedule inflation, class counts, invented
    // bugs, inequality violations) have no schedule that demonstrates
    // anything — persisting an empty-schedule "repro" would replay as
    // reproduced while showing nothing. They stay report-only.
    let demonstrable = |d: &Disagreement| {
        d.witness.is_some()
            || matches!(
                d.kind,
                DisagreementKind::MissedDeadlock | DisagreementKind::MissedFault
            )
    };
    let mut out = Vec::new();
    let mut seen_specs: Vec<&str> = Vec::new();
    for disagreement in disagreements {
        if seen_specs.contains(&disagreement.spec.as_str()) {
            continue;
        }
        seen_specs.push(&disagreement.spec);
        // Shrink toward the spec's first *demonstrable* disagreement —
        // witness-less kinds earlier in the list must not suppress a
        // replayable repro for the same spec.
        let Some(disagreement) = disagreements
            .iter()
            .find(|d| d.spec == disagreement.spec && demonstrable(d))
        else {
            continue; // every divergence for this spec is report-only
        };
        let Some(oracle_spec) = oracle.iter().find(|o| o.spec == disagreement.spec) else {
            continue;
        };
        // The shrink invariant: the same spec still breaks a promise of
        // the same class on the candidate program.
        let reproduces = |candidate: &Program| -> Option<Disagreement> {
            let truth =
                crate::oracle::ground_truth(candidate, registry, config.budget, case_seed, cancel)
                    .ok()??;
            crate::oracle::check_strategy(
                candidate,
                registry,
                oracle_spec,
                &truth,
                config.budget,
                case_seed,
                cancel,
            )
            .ok()?
            .into_iter()
            .find(|d| d.kind.same_class(&disagreement.kind))
        };
        let shrunk = if config.shrink && !cancel.is_cancelled() {
            shrink_program(program, |candidate| reproduces(candidate).is_some())
        } else {
            program.clone()
        };
        // Give each offending spec its own program name — and with it its
        // own fingerprint and corpus slot — so two specs disagreeing on
        // the same case never overwrite each other's artifact.
        let shrunk = with_spec_name(&shrunk, &disagreement.spec);
        // Re-derive the divergence on the (renamed) shrunk program so the
        // embedded schedule matches the embedded program.
        let Some(final_disagreement) = reproduces(&shrunk) else {
            continue; // cancelled mid-shrink; nothing trustworthy to save
        };
        if !demonstrable(&final_disagreement) {
            continue; // shrinking landed on a report-only kind after all
        }
        let artifact = artifact_for(&shrunk, &final_disagreement, registry, config, case_seed);
        let (path, save_error) = match store.map(|store| store.save_overwrite(&artifact)) {
            Some(Ok(path)) => (Some(path), None),
            Some(Err(e)) => (
                None,
                Some(format!("saving repro for {}: {e}", artifact.program_name)),
            ),
            None => (None, None),
        };
        out.push(Repro {
            spec: disagreement.spec.clone(),
            kind: disagreement.kind.label().to_string(),
            instructions: shrunk.instruction_count(),
            schedule_len: artifact.schedule.len(),
            path,
            save_error,
            artifact,
        });
    }
    out
}

/// Renames `program` to carry a sanitized suffix of the offending spec.
fn with_spec_name(program: &Program, spec: &str) -> Program {
    let slug: String = spec
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    Program::new(
        format!("{}-{slug}", program.name()),
        program.vars().to_vec(),
        program.mutexes().to_vec(),
        program.threads().to_vec(),
    )
    .expect("renaming a valid program keeps it valid")
}

/// Builds the self-contained artifact for a shrunk disagreement: the DFS
/// bug schedule (minimised) for missed bug classes, a clean witness
/// schedule for everything with a state/class witness.
fn artifact_for(
    shrunk: &Program,
    disagreement: &Disagreement,
    registry: &StrategyRegistry,
    config: &FuzzConfig,
    case_seed: u64,
) -> TraceArtifact {
    let spec = &disagreement.spec;
    // No stop-on-bug: the shrunk program may fault *and* deadlock, and
    // stopping at the first bug could hide the class this repro needs.
    // The budgeted full exploration of a shrunk program is cheap, and the
    // session's bug sink keeps one report per distinct bug kind.
    let bug_schedule = |want_deadlock: bool| -> Option<BugReport> {
        let outcome = lazylocks::ExploreSession::new(shrunk)
            .with_config(lazylocks::ExploreConfig::with_limit(config.budget).seeded(case_seed))
            .run_with(registry, "dfs")
            .ok()?;
        outcome
            .bugs
            .iter()
            .find(|b| b.is_deadlock() == want_deadlock)
            .map(|bug| minimize_schedule(shrunk, bug))
    };
    let bug = match disagreement.kind {
        DisagreementKind::MissedDeadlock => bug_schedule(true),
        DisagreementKind::MissedFault => bug_schedule(false),
        _ => None,
    };
    match (&bug, &disagreement.witness) {
        (Some(bug), _) => {
            // `bug` came out of minimize_schedule above, so the flag means
            // the same thing it does for `run --save-traces` artifacts.
            let mut artifact = TraceArtifact::from_bug(shrunk, spec, case_seed, bug);
            artifact.minimized = true;
            artifact
        }
        (None, witness) => {
            // A witness trace: the schedule replays to the state/class the
            // strategy missed. Record whatever outcome the witness run
            // itself has (a missed *state* can be a deadlocked terminal),
            // so replay classification matches the artifact.
            let schedule = witness.clone().unwrap_or_default();
            let run = lazylocks_runtime::run_schedule(shrunk, &schedule)
                .expect("DFS witness schedules replay");
            let kind = if let lazylocks_runtime::RunStatus::Deadlock { waiting } = &run.status {
                Some(lazylocks::BugKind::Deadlock {
                    waiting: waiting.clone(),
                })
            } else {
                run.faults
                    .first()
                    .map(|f| lazylocks::BugKind::Fault(f.clone()))
            };
            TraceArtifact {
                tool_version: env!("CARGO_PKG_VERSION").to_string(),
                program_name: shrunk.name().to_string(),
                program_fingerprint: lazylocks_runtime::program_fingerprint(shrunk),
                program_source: shrunk.to_source(),
                strategy_spec: spec.clone(),
                seed: case_seed,
                schedule,
                // The raw DFS witness schedule never went through
                // minimize_schedule; program-level shrinking is a
                // different operation and must not claim this flag.
                minimized: false,
                bug: kind,
                trace_len: run.trace.len(),
                stats: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::default_oracle_specs;

    fn quick_config(cases: usize, seed: u64) -> FuzzConfig {
        FuzzConfig {
            profiles: ShapeProfile::ALL.to_vec(),
            cases,
            seed,
            budget: 10_000,
            max_size: 2,
            shrink: true,
        }
    }

    #[test]
    fn fuzz_reports_are_deterministic_and_agree() {
        let registry = StrategyRegistry::default();
        let oracle = default_oracle_specs();
        let run = || {
            run_fuzz(
                &quick_config(10, 99),
                &registry,
                &oracle,
                None,
                &CancelToken::new(),
                |_| {},
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cases.len(), b.cases.len());
        assert_eq!(a.total_disagreements(), 0, "{:#?}", a.cases);
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.program_name, y.program_name);
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.status, y.status);
            assert_eq!(x.dfs, y.dfs);
        }
        // A different seed shifts the corpus.
        let c = run_fuzz(
            &quick_config(10, 100),
            &registry,
            &oracle,
            None,
            &CancelToken::new(),
            |_| {},
        )
        .unwrap();
        assert!(
            a.cases
                .iter()
                .zip(&c.cases)
                .any(|(x, y)| x.fingerprint != y.fingerprint),
            "different seeds generate different corpora"
        );
    }

    #[test]
    fn cancellation_stops_the_corpus_early() {
        let registry = StrategyRegistry::default();
        let oracle = default_oracle_specs();
        let cancel = CancelToken::new();
        cancel.cancel();
        let report = run_fuzz(
            &quick_config(50, 1),
            &registry,
            &oracle,
            None,
            &cancel,
            |_| {},
        )
        .unwrap();
        assert!(report.cancelled);
        assert!(report.cases.len() <= 1);
    }

    #[test]
    fn progress_fires_once_per_case_in_order() {
        let registry = StrategyRegistry::default();
        let oracle = default_oracle_specs();
        let mut seen = Vec::new();
        let report = run_fuzz(
            &quick_config(6, 3),
            &registry,
            &oracle,
            None,
            &CancelToken::new(),
            |case| seen.push(case.index),
        )
        .unwrap();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        assert_eq!(report.cases.len(), 6);
    }
}
