//! Grammar-directed guest-program generation.
//!
//! Programs are emitted through [`lazylocks_model::ProgramBuilder`] from a
//! deterministic [`SplitMix64`] stream, so a `(profile, size, seed)` triple
//! always yields the same program. Generation is organised around
//! **shape profiles** — each profile biases the grammar toward a distinct
//! stress pattern so the corpus exercises different explorer code paths
//! instead of uniform noise:
//!
//! | Profile | Stresses |
//! |---------|----------|
//! | [`ShapeProfile::LockHeavy`] | mutex blocking, critical-section serialisation, the lazy relation's dropped mutex edges |
//! | [`ShapeProfile::DataRaceRich`] | variable dependence, racy read-modify-write, assertion faults |
//! | [`ShapeProfile::DeadlockProne`] | inconsistent lock orders, deadlock detection, blocked-acquisition backtracking |
//! | [`ShapeProfile::Branchy`] | schedule-dependent control flow, bounded loops, branch targets |
//! | [`ShapeProfile::WideFanOut`] | wide enabled sets, thread-set bitmask paths, shallow trees |
//!
//! Every generated program is **finite** (loops are statically bounded),
//! **lock-disciplined inside a thread** (no self-lock, every acquired mutex
//! is released on every path — deadlocks arise only from cross-thread
//! order inversions), and uses identifier names that survive the `.llk`
//! print → parse round trip (several deliberately collide with format
//! keywords to keep that guarantee honest).

use lazylocks::rng::SplitMix64;
use lazylocks_model::{MutexId, Program, ProgramBuilder, Reg, Value, VarId};

/// The generation profiles; see the module docs for what each stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeProfile {
    /// Well-ordered critical sections over several mutexes.
    LockHeavy,
    /// Few variables, many unsynchronised conflicting accesses, asserts.
    DataRaceRich,
    /// Nested acquisitions in inconsistent orders.
    DeadlockProne,
    /// Value-dependent branches and statically bounded loops.
    Branchy,
    /// Many threads with one or two operations each.
    WideFanOut,
}

impl ShapeProfile {
    /// Every profile, in the canonical corpus order.
    pub const ALL: [ShapeProfile; 5] = [
        ShapeProfile::LockHeavy,
        ShapeProfile::DataRaceRich,
        ShapeProfile::DeadlockProne,
        ShapeProfile::Branchy,
        ShapeProfile::WideFanOut,
    ];

    /// The profile's stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ShapeProfile::LockHeavy => "lock-heavy",
            ShapeProfile::DataRaceRich => "data-race-rich",
            ShapeProfile::DeadlockProne => "deadlock-prone",
            ShapeProfile::Branchy => "branchy",
            ShapeProfile::WideFanOut => "wide-fan-out",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<ShapeProfile> {
        ShapeProfile::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for ShapeProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The size dial's largest setting (`1..=MAX_SIZE`). Size scales thread
/// counts and per-thread operation counts while keeping the full schedule
/// space small enough for exhaustive ground truth under a modest budget.
pub const MAX_SIZE: usize = 3;

/// Identifier stems for generated declarations. Several collide with text
/// format keywords on purpose: the corpus continuously re-proves that the
/// printer/parser round trip is keyword-proof.
const VAR_STEMS: &[&str] = &["v", "ctr", "flag", "slot", "load", "r0"];
const MUTEX_STEMS: &[&str] = &["m", "lk", "gate", "store"];

/// Generates one program. Equal `(profile, size, name)` with an equally
/// positioned `rng` always produce the same program.
///
/// `size` is clamped to `1..=MAX_SIZE`; `name` must be a valid program
/// name (the builder panics otherwise, as for any invalid program).
pub fn generate(profile: ShapeProfile, size: usize, name: &str, rng: &mut SplitMix64) -> Program {
    let size = size.clamp(1, MAX_SIZE);
    let mut b = ProgramBuilder::new(name);
    match profile {
        ShapeProfile::LockHeavy => lock_heavy(&mut b, size, rng),
        ShapeProfile::DataRaceRich => data_race_rich(&mut b, size, rng),
        ShapeProfile::DeadlockProne => deadlock_prone(&mut b, size, rng),
        ShapeProfile::Branchy => branchy(&mut b, size, rng),
        ShapeProfile::WideFanOut => wide_fan_out(&mut b, size, rng),
    }
    b.build()
}

/// One entry of a deterministic fuzz corpus, as derived by [`corpus`].
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Dense 0-based case index.
    pub index: usize,
    /// The shape profile the case was drawn from.
    pub profile: ShapeProfile,
    /// Size-dial value used.
    pub size: usize,
    /// The per-case seed (also used to seed the oracle's strategy runs).
    pub seed: u64,
    /// The generated program, named `fuzz-<profile>-<index>`.
    pub program: Program,
}

/// Derives **the** deterministic corpus for `cases` indices: profiles
/// round-robin (all of them when `profiles` is empty), the size dial
/// cycling `1..=max_size`, and a per-case seed drawn *up front* from one
/// master stream — so one case's generation never shifts the programs of
/// later cases. The fuzz harness and the integration-test corpus share
/// this single definition.
pub fn corpus(
    profiles: &[ShapeProfile],
    max_size: usize,
    cases: usize,
    seed: u64,
) -> Vec<CorpusCase> {
    let profiles = if profiles.is_empty() {
        &ShapeProfile::ALL
    } else {
        profiles
    };
    let max_size = max_size.clamp(1, MAX_SIZE);
    let mut master = SplitMix64::new(seed);
    (0..cases)
        .map(|index| {
            let case_seed = master.next_u64();
            let profile = profiles[index % profiles.len()];
            let size = 1 + (index / profiles.len()) % max_size;
            let mut rng = SplitMix64::new(case_seed);
            let name = format!("fuzz-{}-{index}", profile.name());
            let program = generate(profile, size, &name, &mut rng);
            CorpusCase {
                index,
                profile,
                size,
                seed: case_seed,
                program,
            }
        })
        .collect()
}

fn decl_vars(b: &mut ProgramBuilder, n: usize, rng: &mut SplitMix64) -> Vec<VarId> {
    (0..n)
        .map(|i| {
            let stem = VAR_STEMS[rng.gen_range(VAR_STEMS.len())];
            b.var(format!("{stem}{i}"), (rng.gen_range(3)) as Value)
        })
        .collect()
}

fn decl_mutexes(b: &mut ProgramBuilder, n: usize, rng: &mut SplitMix64) -> Vec<MutexId> {
    (0..n)
        .map(|i| {
            let stem = MUTEX_STEMS[rng.gen_range(MUTEX_STEMS.len())];
            b.mutex(format!("{stem}{i}"))
        })
        .collect()
}

/// `lock-heavy`: 2–3 threads over `size + 1` mutexes; almost every access
/// sits in a critical section and nested sections always acquire in
/// ascending mutex order, so the profile is deadlock-free by construction
/// — pure serialisation pressure plus the occasional bare store to keep a
/// race in play.
fn lock_heavy(b: &mut ProgramBuilder, size: usize, rng: &mut SplitMix64) {
    let vars = decl_vars(b, size + 1, rng);
    let mutexes = decl_mutexes(b, size + 1, rng);
    let threads = 2 + usize::from(size >= 3);
    for tix in 0..threads {
        let vars = vars.clone();
        let mutexes = mutexes.clone();
        let sections = 1 + rng.gen_range(size.min(2) + 1);
        let mut plan: Vec<(usize, Option<usize>, u64)> = Vec::new();
        for _ in 0..sections {
            let lo = rng.gen_range(mutexes.len());
            // One section in three nests a second, higher-indexed mutex —
            // ascending order keeps the profile deadlock-free.
            let hi = if rng.gen_range(3) == 0 && lo + 1 < mutexes.len() {
                Some(lo + 1 + rng.gen_range(mutexes.len() - lo - 1))
            } else {
                None
            };
            plan.push((lo, hi, rng.next_u64()));
        }
        let bare_store = rng.gen_range(4) == 0;
        let bare_var = rng.gen_range(vars.len());
        b.thread(format!("T{tix}"), move |t| {
            for (lo, hi, salt) in &plan {
                let var = vars[*salt as usize % vars.len()];
                t.lock(mutexes[*lo]);
                if let Some(hi) = hi {
                    t.lock(mutexes[*hi]);
                }
                match salt % 3 {
                    0 => t.store(var, (salt % 5) as Value),
                    1 => t.load(Reg(0), var),
                    _ => {
                        t.load(Reg(0), var);
                        t.add(Reg(0), Reg(0), 1);
                        t.store(var, Reg(0));
                    }
                }
                if let Some(hi) = hi {
                    t.unlock(mutexes[*hi]);
                }
                t.unlock(mutexes[*lo]);
            }
            if bare_store {
                t.store(vars[bare_var], 7);
            }
            t.set(Reg(0), 0);
        });
    }
}

/// `data-race-rich`: 2–3 threads hammering 1–2 shared variables with
/// unsynchronised loads, stores and read-modify-writes, plus occasional
/// assertions over loaded values — the profile that exercises variable
/// dependence, lost updates and fault reporting.
fn data_race_rich(b: &mut ProgramBuilder, size: usize, rng: &mut SplitMix64) {
    let vars = decl_vars(b, 1 + size / 2, rng);
    let threads = 2 + usize::from(size >= 3);
    let ops_per_thread = if threads == 3 { 2 } else { 1 + size.min(2) };
    for tix in 0..threads {
        let vars = vars.clone();
        let ops: Vec<u64> = (0..ops_per_thread).map(|_| rng.next_u64()).collect();
        b.thread(format!("T{tix}"), move |t| {
            for salt in &ops {
                let var = vars[(salt >> 8) as usize % vars.len()];
                match salt % 5 {
                    0 => t.store(var, (salt % 4) as Value),
                    1 => t.load(Reg(0), var),
                    2 => t.fetch_add_racy(var, 1),
                    3 => {
                        t.load(Reg(0), var);
                        t.assert_true(Reg(0), format!("saw zero in {}", var.index()));
                    }
                    _ => {
                        t.load(Reg(0), var);
                        t.mul(Reg(0), Reg(0), 2);
                        t.store(var, Reg(0));
                    }
                }
            }
            t.set(Reg(0), 0);
        });
    }
}

/// `deadlock-prone`: 2–3 threads, each taking two distinct mutexes in a
/// randomly chosen order with a store in the doubly-locked region. Order
/// inversions between threads create real AB-BA deadlocks; the occasional
/// single-lock thread keeps the space from being all-deadlock.
fn deadlock_prone(b: &mut ProgramBuilder, size: usize, rng: &mut SplitMix64) {
    let vars = decl_vars(b, 2, rng);
    let mutexes = decl_mutexes(b, 2 + usize::from(size >= 2), rng);
    let threads = 2 + usize::from(size >= 2);
    for tix in 0..threads {
        let vars = vars.clone();
        let mutexes = mutexes.clone();
        let first = rng.gen_range(mutexes.len());
        let mut second = rng.gen_range(mutexes.len());
        if second == first {
            second = (second + 1) % mutexes.len();
        }
        let single = rng.gen_range(4) == 0;
        let var = rng.gen_range(vars.len());
        let val = (tix + 1) as Value;
        b.thread(format!("T{tix}"), move |t| {
            if single {
                t.with_lock(mutexes[first], |t| t.store(vars[var], val));
            } else {
                t.lock(mutexes[first]);
                t.lock(mutexes[second]);
                t.store(vars[var], val);
                t.unlock(mutexes[second]);
                t.unlock(mutexes[first]);
            }
        });
    }
}

/// `branchy`: two threads whose control flow depends on the values other
/// threads wrote — forward branches over stores plus a statically bounded
/// re-read loop, so different schedules execute different code paths.
fn branchy(b: &mut ProgramBuilder, size: usize, rng: &mut SplitMix64) {
    let vars = decl_vars(b, 2, rng);
    let flag = vars[0];
    let data = vars[1];
    for tix in 0..2 {
        let salt = rng.next_u64();
        let loops = 1 + rng.gen_range(size);
        b.thread(format!("T{tix}"), move |t| {
            if tix == 0 {
                // Writer: publish data, then the flag (or inverted, per
                // salt, so the "safe" publication order is not fixed).
                if salt.is_multiple_of(2) {
                    t.store(data, 41 + salt as Value % 3);
                    t.store(flag, 1);
                } else {
                    t.store(flag, 1);
                    t.store(data, 41 + salt as Value % 3);
                }
            } else {
                // Reader: bounded spin on the flag, then branch on data.
                // The spin runs before any other register reference, so
                // its `alloc_reg` scratch is Reg(0) — the same register
                // every later instruction reuses; the single trailing
                // `set` clears all spin residue out of the terminal state.
                let give_up = t.label();
                t.spin_until_eq_bounded(flag, 1, loops, give_up);
                t.load(Reg(0), data);
                let skip = t.label();
                t.branch_if_zero(Reg(0), skip);
                t.store(data, 0);
                t.bind(skip);
                t.bind(give_up);
            }
            t.set(Reg(0), 0);
        });
    }
}

/// `wide-fan-out`: `3 + size` threads with a single visible operation each
/// (two for the first thread at size 1), most of them hitting one hot
/// variable — maximal enabled-set width with a shallow tree.
fn wide_fan_out(b: &mut ProgramBuilder, size: usize, rng: &mut SplitMix64) {
    let vars = decl_vars(b, 2 + size, rng);
    let hot = vars[0];
    let threads = 3 + size;
    for tix in 0..threads {
        let vars = vars.clone();
        let salt = rng.next_u64();
        let extra = size == 1 && tix == 0;
        b.thread(format!("T{tix}"), move |t| {
            let var = if salt.is_multiple_of(3) {
                vars[1 + (salt >> 8) as usize % (vars.len() - 1)]
            } else {
                hot
            };
            match salt % 2 {
                0 => t.store(var, (salt % 4) as Value),
                _ => {
                    t.load(Reg(0), var);
                    t.set(Reg(0), 0);
                }
            }
            if extra {
                t.store(hot, 9);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for profile in ShapeProfile::ALL {
            for size in 1..=MAX_SIZE {
                let a = generate(profile, size, "p", &mut SplitMix64::new(42));
                let b = generate(profile, size, "p", &mut SplitMix64::new(42));
                assert_eq!(a, b, "{profile} size {size}");
                let c = generate(profile, size, "p", &mut SplitMix64::new(43));
                // Different seeds *usually* differ; at minimum they stay
                // valid. (No assertion of inequality: small shapes can
                // coincide.)
                c.validate().unwrap();
            }
        }
    }

    #[test]
    fn generated_programs_validate_and_round_trip() {
        let mut rng = SplitMix64::new(7);
        for i in 0..60 {
            let profile = ShapeProfile::ALL[i % ShapeProfile::ALL.len()];
            let size = 1 + i % MAX_SIZE;
            let p = generate(profile, size, &format!("gen-{i}"), &mut rng);
            p.validate().unwrap();
            let reparsed = Program::parse(&p.to_source()).expect("printed source parses");
            assert_eq!(p, reparsed, "{}", p.to_source());
        }
    }

    #[test]
    fn profiles_have_distinct_shapes() {
        let mut rng = SplitMix64::new(1);
        let wide = generate(ShapeProfile::WideFanOut, 3, "w", &mut rng);
        assert!(wide.thread_count() >= 5, "wide fan-out is wide");
        let mut rng = SplitMix64::new(1);
        let locky = generate(ShapeProfile::LockHeavy, 2, "l", &mut rng);
        assert!(!locky.mutexes().is_empty());
        let lock_ops = locky
            .threads()
            .iter()
            .flat_map(|t| &t.code)
            .filter(|i| matches!(i, lazylocks_model::Instr::Lock(_)))
            .count();
        assert!(lock_ops >= 2, "lock-heavy programs lock");
        let mut rng = SplitMix64::new(1);
        let branchy = generate(ShapeProfile::Branchy, 2, "b", &mut rng);
        assert!(
            branchy
                .threads()
                .iter()
                .flat_map(|t| &t.code)
                .any(|i| matches!(i, lazylocks_model::Instr::Branch { .. })),
            "branchy programs branch"
        );
    }

    #[test]
    fn deadlock_prone_profile_actually_deadlocks_somewhere() {
        use lazylocks::{DfsEnumeration, ExploreConfig, Explorer};
        let mut rng = SplitMix64::new(0xfee1);
        let mut deadlocks = 0;
        for i in 0..10 {
            let p = generate(ShapeProfile::DeadlockProne, 2, &format!("d{i}"), &mut rng);
            let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(50_000));
            assert!(!stats.limit_hit, "deadlock-prone stays exhaustible");
            deadlocks += stats.deadlocks.min(1);
        }
        assert!(deadlocks >= 3, "several of 10 cases deadlock: {deadlocks}");
    }

    #[test]
    fn profile_names_round_trip() {
        for p in ShapeProfile::ALL {
            assert_eq!(ShapeProfile::from_name(p.name()), Some(p));
        }
        assert_eq!(ShapeProfile::from_name("nope"), None);
    }
}
