//! The differential exploration oracle.
//!
//! For one guest program, exhaustive DFS establishes ground truth — the
//! exact sets of terminal-state and regular-HBR fingerprints, the lazy-HBR
//! class count, and which bug classes exist — and every other registered
//! strategy is then checked against the **agreement contract** of its
//! [`Agreement`] level. Anything the contract promises that does not hold
//! becomes a structured [`Disagreement`] with a machine-readable kind and,
//! where one exists, a witness schedule demonstrating the divergence.
//!
//! The levels mirror what each strategy documents (and what the
//! integration test suite already pins on the curated corpus):
//!
//! * [`Agreement::FullParity`] — identical terminal-state, regular-HBR and
//!   lazy-HBR class sets/counts, bug-class parity, and no more schedules
//!   than DFS: `dpor`, `caching`, `parallel`, and the work-stealing
//!   `parallel(reduction=dpor)` (whose explored set is the same
//!   deterministic fixpoint as sequential `dpor`, any worker count).
//! * [`Agreement::StateParity`] — identical state set and lazy-HBR count;
//!   regular HBR classes may legitimately collapse (`caching(mode=lazy)`
//!   prunes on the lazy relation, which identifies more prefixes).
//! * [`Agreement::BugParity`] — finds a deadlock/fault iff DFS does, and
//!   reaches only true states: `dpor(sleep=true)` (the sleep-set blocking
//!   caveat) and the `lazy-dpor` prototype (empirically state-preserving,
//!   but without a completeness proof — the paper's §4 open problem),
//!   plus its work-stealing twin `parallel(reduction=lazy)`, which
//!   mirrors the same caveat.
//! * [`Agreement::Sound`] — may miss anything, but everything it reports
//!   must be real: states a subset of DFS's, bugs only where DFS finds the
//!   same class (`random`, `bounded`, `caching(mode=sync)`,
//!   `lazy-dpor(style=vars)`).
//!
//! Every level additionally re-checks the paper's §3 counting inequality
//! on the strategy's own counters.

use lazylocks::{
    CancelToken, ExploreConfig, ExploreOutcome, ExploreSession, SpecError, StrategyRegistry,
};
use lazylocks_model::{Program, ThreadId};
use std::collections::BTreeMap;
use std::fmt;

/// What a strategy promises relative to exhaustive DFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agreement {
    /// States, regular-HBR classes, lazy-HBR count, bug classes, and
    /// schedule economy all match.
    FullParity,
    /// State set and lazy-HBR count match; regular HBR classes may
    /// collapse.
    StateParity,
    /// Bug classes match; states are a subset.
    BugParity,
    /// Everything reported is real; nothing is promised found.
    Sound,
}

impl Agreement {
    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Agreement::FullParity => "full-parity",
            Agreement::StateParity => "state-parity",
            Agreement::BugParity => "bug-parity",
            Agreement::Sound => "sound",
        }
    }
}

/// One strategy the oracle runs, with its promised agreement level.
#[derive(Debug, Clone)]
pub struct OracleSpec {
    /// Registry spec string.
    pub spec: String,
    /// The contract checked against ground truth.
    pub agreement: Agreement,
}

impl OracleSpec {
    /// Convenience constructor.
    pub fn new(spec: impl Into<String>, agreement: Agreement) -> OracleSpec {
        OracleSpec {
            spec: spec.into(),
            agreement,
        }
    }
}

/// The default oracle: every built-in strategy family of the
/// [`StrategyRegistry`] at its documented agreement level.
pub fn default_oracle_specs() -> Vec<OracleSpec> {
    use Agreement::*;
    vec![
        OracleSpec::new("dpor", FullParity),
        OracleSpec::new("caching", FullParity),
        OracleSpec::new("parallel(workers=2)", FullParity),
        OracleSpec::new("parallel(reduction=dpor, workers=2)", FullParity),
        OracleSpec::new("caching(mode=lazy)", StateParity),
        OracleSpec::new("dpor(sleep=true)", BugParity),
        OracleSpec::new("lazy-dpor", BugParity),
        OracleSpec::new("parallel(reduction=lazy, workers=2)", BugParity),
        OracleSpec::new("lazy-dpor(style=vars)", Sound),
        OracleSpec::new("caching(mode=sync)", Sound),
        OracleSpec::new("bounded", Sound),
        OracleSpec::new("random", Sound),
    ]
}

/// Exhaustive ground truth for one program: fingerprint sets with one
/// witness schedule per class, plus the DFS outcome itself.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Terminal-state fingerprints → witness schedule.
    pub states: BTreeMap<u128, Vec<ThreadId>>,
    /// Terminal regular-HBR fingerprints → witness schedule.
    pub hbrs: BTreeMap<u128, Vec<ThreadId>>,
    /// Distinct terminal lazy-HBR classes.
    pub lazy_hbrs: usize,
    /// The full DFS outcome (stats, distinct bugs, verdict).
    pub outcome: ExploreOutcome,
}

impl GroundTruth {
    /// `true` when DFS found at least one deadlocking schedule.
    pub fn has_deadlock(&self) -> bool {
        self.outcome.stats.deadlocks > 0
    }

    /// `true` when DFS found at least one faulting schedule.
    pub fn has_fault(&self) -> bool {
        self.outcome.stats.faulted_schedules > 0
    }
}

/// A machine-readable divergence class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisagreementKind {
    /// DFS reached a terminal state the strategy never produced.
    MissingState { fingerprint: u128 },
    /// The strategy produced a terminal state DFS never reached —
    /// impossible for a sound executor; always reported.
    UnsoundState { fingerprint: u128 },
    /// DFS reached a regular-HBR class the strategy never produced.
    MissingHbrClass { fingerprint: u128 },
    /// The strategy produced a regular-HBR class DFS never reached.
    UnsoundHbrClass { fingerprint: u128 },
    /// Lazy-HBR class counts differ.
    LazyHbrCount { expected: usize, found: usize },
    /// DFS deadlocks, the strategy never did.
    MissedDeadlock,
    /// The strategy deadlocked, DFS never did.
    InventedDeadlock,
    /// DFS faults, the strategy never did.
    MissedFault,
    /// The strategy faulted, DFS never did.
    InventedFault,
    /// A reduction explored more complete schedules than plain DFS.
    ScheduleInflation { dfs: usize, found: usize },
    /// The strategy's own counters violate the §3 counting inequality.
    InequalityViolation { message: String },
}

impl DisagreementKind {
    /// Short stable label (the JSON `kind` field).
    pub fn label(&self) -> &'static str {
        match self {
            DisagreementKind::MissingState { .. } => "missing-state",
            DisagreementKind::UnsoundState { .. } => "unsound-state",
            DisagreementKind::MissingHbrClass { .. } => "missing-hbr-class",
            DisagreementKind::UnsoundHbrClass { .. } => "unsound-hbr-class",
            DisagreementKind::LazyHbrCount { .. } => "lazy-hbr-count",
            DisagreementKind::MissedDeadlock => "missed-deadlock",
            DisagreementKind::InventedDeadlock => "invented-deadlock",
            DisagreementKind::MissedFault => "missed-fault",
            DisagreementKind::InventedFault => "invented-fault",
            DisagreementKind::ScheduleInflation { .. } => "schedule-inflation",
            DisagreementKind::InequalityViolation { .. } => "inequality-violation",
        }
    }

    /// `true` when two kinds describe the same *class* of divergence
    /// (ignoring fingerprints and counts) — the shrinker's invariant while
    /// it deletes program pieces.
    pub fn same_class(&self, other: &DisagreementKind) -> bool {
        self.label() == other.label()
    }
}

impl fmt::Display for DisagreementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisagreementKind::MissingState { fingerprint } => {
                write!(f, "missing terminal state {fingerprint:032x}")
            }
            DisagreementKind::UnsoundState { fingerprint } => {
                write!(f, "unsound terminal state {fingerprint:032x}")
            }
            DisagreementKind::MissingHbrClass { fingerprint } => {
                write!(f, "missing regular-HBR class {fingerprint:032x}")
            }
            DisagreementKind::UnsoundHbrClass { fingerprint } => {
                write!(f, "unsound regular-HBR class {fingerprint:032x}")
            }
            DisagreementKind::LazyHbrCount { expected, found } => {
                write!(f, "lazy-HBR classes: expected {expected}, found {found}")
            }
            DisagreementKind::MissedDeadlock => write!(f, "missed a deadlock DFS finds"),
            DisagreementKind::InventedDeadlock => write!(f, "reported a deadlock DFS never finds"),
            DisagreementKind::MissedFault => write!(f, "missed a fault DFS finds"),
            DisagreementKind::InventedFault => write!(f, "reported a fault DFS never finds"),
            DisagreementKind::ScheduleInflation { dfs, found } => {
                write!(f, "explored {found} schedules where DFS needs {dfs}")
            }
            DisagreementKind::InequalityViolation { message } => {
                write!(f, "counting inequality violated: {message}")
            }
        }
    }
}

/// One broken promise: which strategy, what went wrong, and a witness
/// schedule where one exists (a DFS schedule reaching a missed state or
/// class).
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// The registry spec string the strategy was built from.
    pub spec: String,
    /// The strategy's stable `Explorer::name`.
    pub strategy_id: String,
    /// The contract level that was broken.
    pub agreement: Agreement,
    /// What diverged.
    pub kind: DisagreementKind,
    /// A DFS witness schedule demonstrating the divergence, if one exists.
    pub witness: Option<Vec<ThreadId>>,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, promised {}): {}",
            self.spec,
            self.strategy_id,
            self.agreement.name(),
            self.kind
        )
    }
}

/// How one differential check over a program ended.
#[derive(Debug, Clone)]
pub enum DifferentialVerdict {
    /// Every strategy honoured its contract.
    Agreement,
    /// At least one contract was broken.
    Disagreements(Vec<Disagreement>),
    /// DFS hit the schedule budget; no ground truth, nothing compared.
    Unexhausted,
    /// The cancel token stopped the check.
    Cancelled,
}

/// The full result of one differential check.
#[derive(Debug, Clone)]
pub struct DifferentialCase {
    /// How it ended.
    pub verdict: DifferentialVerdict,
    /// Ground truth, present unless the case was unexhausted/cancelled
    /// before DFS completed.
    pub truth: Option<GroundTruth>,
}

fn witness_config(budget: usize, seed: u64) -> ExploreConfig {
    let mut config = ExploreConfig::with_limit(budget).seeded(seed);
    config.collect_state_witnesses = true;
    config
}

fn run_spec(
    program: &Program,
    registry: &StrategyRegistry,
    spec: &str,
    budget: usize,
    seed: u64,
    cancel: &CancelToken,
) -> Result<ExploreOutcome, SpecError> {
    // Sharing the token (rather than bridging it through an observer)
    // stops a fuzzing session mid-strategy rather than mid-corpus.
    ExploreSession::new(program)
        .with_config(witness_config(budget, seed))
        .progress_every(0)
        .cancel_with(cancel.clone())
        .run_with(registry, spec)
}

/// Establishes exhaustive ground truth for `program`, or `None` when the
/// schedule space exceeds `budget` (the caller should skip comparisons).
pub fn ground_truth(
    program: &Program,
    registry: &StrategyRegistry,
    budget: usize,
    seed: u64,
    cancel: &CancelToken,
) -> Result<Option<GroundTruth>, SpecError> {
    let outcome = run_spec(program, registry, "dfs", budget, seed, cancel)?;
    if outcome.stats.limit_hit || outcome.stats.truncated_runs > 0 || outcome.stats.cancelled {
        return Ok(None);
    }
    let states = outcome
        .stats
        .state_witnesses
        .iter()
        .cloned()
        .collect::<BTreeMap<_, _>>();
    let hbrs = outcome
        .stats
        .hbr_witnesses
        .iter()
        .cloned()
        .collect::<BTreeMap<_, _>>();
    debug_assert_eq!(states.len(), outcome.stats.unique_states);
    debug_assert_eq!(hbrs.len(), outcome.stats.unique_hbrs);
    Ok(Some(GroundTruth {
        states,
        hbrs,
        lazy_hbrs: outcome.stats.unique_lazy_hbrs,
        outcome,
    }))
}

/// Checks one strategy against ground truth, returning every broken
/// promise.
pub fn check_strategy(
    program: &Program,
    registry: &StrategyRegistry,
    oracle: &OracleSpec,
    truth: &GroundTruth,
    budget: usize,
    seed: u64,
    cancel: &CancelToken,
) -> Result<Vec<Disagreement>, SpecError> {
    let outcome = run_spec(program, registry, &oracle.spec, budget, seed, cancel)?;
    if outcome.stats.cancelled {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut push = |kind: DisagreementKind, witness: Option<Vec<ThreadId>>| {
        out.push(Disagreement {
            spec: oracle.spec.clone(),
            strategy_id: outcome.strategy_id.clone(),
            agreement: oracle.agreement,
            kind,
            witness,
        });
    };

    let found_states: BTreeMap<u128, Vec<ThreadId>> =
        outcome.stats.state_witnesses.iter().cloned().collect();
    let found_hbrs: BTreeMap<u128, Vec<ThreadId>> =
        outcome.stats.hbr_witnesses.iter().cloned().collect();

    // Soundness holds at every level: reported states and classes must be
    // reachable (every strategy records only real executions, all of
    // which exhaustive DFS enumerated), and reported bug classes must
    // exist.
    for (&fp, witness) in &found_states {
        if !truth.states.contains_key(&fp) {
            push(
                DisagreementKind::UnsoundState { fingerprint: fp },
                Some(witness.clone()),
            );
        }
    }
    for (&fp, witness) in &found_hbrs {
        if !truth.hbrs.contains_key(&fp) {
            push(
                DisagreementKind::UnsoundHbrClass { fingerprint: fp },
                Some(witness.clone()),
            );
        }
    }
    if outcome.stats.deadlocks > 0 && !truth.has_deadlock() {
        push(DisagreementKind::InventedDeadlock, None);
    }
    if outcome.stats.faulted_schedules > 0 && !truth.has_fault() {
        push(DisagreementKind::InventedFault, None);
    }
    if let Err(message) = outcome.stats.check_inequality() {
        push(DisagreementKind::InequalityViolation { message }, None);
    }

    // Completeness obligations per level — but only for complete runs: a
    // strategy truncated by the schedule budget (or the run-length cap)
    // has an incomplete result set, and reporting that as missing
    // states/bugs would conflate budget exhaustion with a broken
    // contract. (The built-in reduced strategies always finish when DFS
    // does; this guards user-registered strategies with less economy.)
    if outcome.stats.limit_hit || outcome.stats.truncated_runs > 0 {
        return Ok(out);
    }
    let state_parity = matches!(
        oracle.agreement,
        Agreement::FullParity | Agreement::StateParity
    );
    let bug_parity = matches!(
        oracle.agreement,
        Agreement::FullParity | Agreement::StateParity | Agreement::BugParity
    );
    if state_parity {
        for (&fp, witness) in &truth.states {
            if !found_states.contains_key(&fp) {
                push(
                    DisagreementKind::MissingState { fingerprint: fp },
                    Some(witness.clone()),
                );
            }
        }
        if outcome.stats.unique_lazy_hbrs != truth.lazy_hbrs {
            push(
                DisagreementKind::LazyHbrCount {
                    expected: truth.lazy_hbrs,
                    found: outcome.stats.unique_lazy_hbrs,
                },
                None,
            );
        }
    }
    if matches!(oracle.agreement, Agreement::FullParity) {
        for (&fp, witness) in &truth.hbrs {
            if !found_hbrs.contains_key(&fp) {
                push(
                    DisagreementKind::MissingHbrClass { fingerprint: fp },
                    Some(witness.clone()),
                );
            }
        }
        if outcome.stats.schedules > truth.outcome.stats.schedules {
            push(
                DisagreementKind::ScheduleInflation {
                    dfs: truth.outcome.stats.schedules,
                    found: outcome.stats.schedules,
                },
                None,
            );
        }
    }
    if bug_parity {
        if truth.has_deadlock() && outcome.stats.deadlocks == 0 {
            push(DisagreementKind::MissedDeadlock, None);
        }
        if truth.has_fault() && outcome.stats.faulted_schedules == 0 {
            push(DisagreementKind::MissedFault, None);
        }
    }
    Ok(out)
}

/// Runs the full differential check: ground truth, then every oracle spec.
pub fn differential_check(
    program: &Program,
    registry: &StrategyRegistry,
    oracle: &[OracleSpec],
    budget: usize,
    seed: u64,
    cancel: &CancelToken,
) -> Result<DifferentialCase, SpecError> {
    if cancel.is_cancelled() {
        return Ok(DifferentialCase {
            verdict: DifferentialVerdict::Cancelled,
            truth: None,
        });
    }
    let Some(truth) = ground_truth(program, registry, budget, seed, cancel)? else {
        let verdict = if cancel.is_cancelled() {
            DifferentialVerdict::Cancelled
        } else {
            DifferentialVerdict::Unexhausted
        };
        return Ok(DifferentialCase {
            verdict,
            truth: None,
        });
    };
    let mut disagreements = Vec::new();
    for spec in oracle {
        if cancel.is_cancelled() {
            return Ok(DifferentialCase {
                verdict: DifferentialVerdict::Cancelled,
                truth: Some(truth),
            });
        }
        disagreements.extend(check_strategy(
            program, registry, spec, &truth, budget, seed, cancel,
        )?);
    }
    // Re-check after the loop: a token fired during the *final* spec left
    // that strategy's contract unchecked (check_strategy returns no
    // findings for a cancelled partial run) — that must not read as
    // agreement.
    let verdict = if cancel.is_cancelled() {
        DifferentialVerdict::Cancelled
    } else if disagreements.is_empty() {
        DifferentialVerdict::Agreement
    } else {
        DifferentialVerdict::Disagreements(disagreements)
    };
    Ok(DifferentialCase {
        verdict,
        truth: Some(truth),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ProgramBuilder, Reg};

    fn racy() -> Program {
        let mut b = ProgramBuilder::new("racy");
        let x = b.var("x", 0);
        for name in ["T1", "T2"] {
            b.thread(name, |t| {
                t.fetch_add_racy(x, 1);
                t.set(Reg(0), 0);
            });
        }
        b.build()
    }

    fn abba() -> Program {
        let mut b = ProgramBuilder::new("abba");
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        b.thread("T1", |t| {
            t.lock(l0);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        b.build()
    }

    #[test]
    fn default_oracle_agrees_on_reference_programs() {
        let registry = StrategyRegistry::default();
        let oracle = default_oracle_specs();
        let cancel = CancelToken::new();
        for program in [racy(), abba()] {
            let case =
                differential_check(&program, &registry, &oracle, 50_000, 1, &cancel).unwrap();
            match case.verdict {
                DifferentialVerdict::Agreement => {}
                other => panic!("{}: {other:?}", program.name()),
            }
        }
    }

    #[test]
    fn ground_truth_collects_witnessed_fingerprints() {
        let registry = StrategyRegistry::default();
        let truth = ground_truth(&racy(), &registry, 10_000, 1, &CancelToken::new())
            .unwrap()
            .expect("racy is exhaustible");
        assert_eq!(truth.states.len(), 2, "lost update => two states");
        let program = racy();
        for (fp, witness) in &truth.states {
            // The witness replays to exactly the fingerprinted state.
            let mut exec = lazylocks_runtime::Executor::new(&program);
            for t in witness {
                exec.step(*t);
            }
            while exec.phase() == lazylocks_runtime::ExecPhase::Running {
                let t = exec.enabled_iter().next().unwrap();
                exec.step(t);
            }
            assert_eq!(exec.state_fingerprint(), *fp);
        }
    }

    #[test]
    fn unexhausted_budget_yields_no_ground_truth() {
        let registry = StrategyRegistry::default();
        let case = differential_check(
            &racy(),
            &registry,
            &default_oracle_specs(),
            2,
            1,
            &CancelToken::new(),
        )
        .unwrap();
        assert!(matches!(case.verdict, DifferentialVerdict::Unexhausted));
        assert!(case.truth.is_none());
    }

    #[test]
    fn pre_cancelled_token_short_circuits() {
        let registry = StrategyRegistry::default();
        let cancel = CancelToken::new();
        cancel.cancel();
        let case = differential_check(
            &racy(),
            &registry,
            &default_oracle_specs(),
            10_000,
            1,
            &cancel,
        )
        .unwrap();
        assert!(matches!(case.verdict, DifferentialVerdict::Cancelled));
    }

    #[test]
    fn lossy_strategy_is_flagged_with_a_witness() {
        use lazylocks::{DfsEnumeration, ExploreStats, Explorer};

        /// DFS that silently stops after one schedule — the canonical
        /// fault injection for oracle tests.
        struct LossyDfs;
        impl Explorer for LossyDfs {
            fn name(&self) -> String {
                "lossy-dfs".to_string()
            }
            fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
                let mut config = config.clone();
                config.schedule_limit = 1;
                let mut stats = DfsEnumeration.explore(program, &config);
                stats.limit_hit = false; // lie: pretend the tree is covered
                stats
            }
        }

        let mut registry = StrategyRegistry::default();
        registry.register("lossy-dfs", "test-only fault injection", |_| {
            Ok(Box::new(LossyDfs))
        });
        let oracle = vec![OracleSpec::new("lossy-dfs", Agreement::FullParity)];
        let program = racy();
        let case = differential_check(&program, &registry, &oracle, 10_000, 1, &CancelToken::new())
            .unwrap();
        let DifferentialVerdict::Disagreements(disagreements) = &case.verdict else {
            panic!("lossy DFS must disagree: {:?}", case.verdict);
        };
        let missing = disagreements
            .iter()
            .find(|d| matches!(d.kind, DisagreementKind::MissingState { .. }))
            .expect("a missing state is diagnosed");
        assert_eq!(missing.spec, "lossy-dfs");
        let witness = missing
            .witness
            .as_ref()
            .expect("missed states carry a witness");
        // The witness replays to the state the lossy strategy missed.
        let DisagreementKind::MissingState { fingerprint } = missing.kind else {
            unreachable!()
        };
        let mut exec = lazylocks_runtime::Executor::new(&program);
        for t in witness {
            exec.step(*t);
        }
        while exec.phase() == lazylocks_runtime::ExecPhase::Running {
            let t = exec.enabled_iter().next().unwrap();
            exec.step(t);
        }
        assert_eq!(exec.state_fingerprint(), fingerprint);
        assert!(missing.to_string().contains("missing terminal state"));
    }
}
