//! Program-level shrinking by delta debugging.
//!
//! Given a program and a predicate ("this disagreement / bug still
//! reproduces"), [`shrink_program`] deletes as much of the program as it
//! can while the predicate keeps holding, in three passes:
//!
//! 1. **threads** — drop whole threads;
//! 2. **instructions** — ddmin-style chunk removal inside each thread,
//!    with jump targets remapped across the removed range;
//! 3. **operands** — replace register operands and non-zero constants
//!    (including variable initial values) with `0`, and shrink assert
//!    messages to a canonical short form.
//!
//! A final cleanup drops declarations no instruction references. The
//! result is a near-minimal `.llk` repro; *schedule*-level minimisation is
//! deliberately left to the existing [`minimize_schedule`] — the two
//! compose: first shrink the program, then minimise the witnessing
//! schedule on the shrunk program.
//!
//! [`minimize_schedule`]: lazylocks::minimize_schedule

use lazylocks_model::{Instr, MutexDecl, MutexId, Operand, Program, ThreadDef, VarDecl, VarId};

/// Shrinks `program` while `keeps_failing` holds. `keeps_failing` must be
/// `true` for `program` itself (debug-asserted); the returned program
/// satisfies it and is structurally valid.
pub fn shrink_program(
    program: &Program,
    mut keeps_failing: impl FnMut(&Program) -> bool,
) -> Program {
    debug_assert!(
        keeps_failing(program),
        "the input program must satisfy the shrink predicate"
    );
    let mut current = program.clone();

    // Pass 1: whole threads, to a fixpoint.
    loop {
        let mut removed = false;
        let mut tix = 0;
        while tix < current.threads().len() {
            if current.threads().len() == 1 {
                break; // programs need at least one thread
            }
            let mut threads = current.threads().to_vec();
            threads.remove(tix);
            if let Some(next) = rebuild(&current, None, None, Some(threads)) {
                if keeps_failing(&next) {
                    current = next;
                    removed = true;
                    continue; // same index now holds the next thread
                }
            }
            tix += 1;
        }
        if !removed {
            break;
        }
    }

    // Pass 2: instruction ranges per thread, ddmin-style granularity.
    for tix in 0..current.threads().len() {
        let mut chunk = (current.threads()[tix].code.len() / 2).max(1);
        loop {
            let mut removed_any = false;
            let mut start = 0;
            while start < current.threads()[tix].code.len() {
                let len = current.threads()[tix].code.len();
                let end = (start + chunk).min(len);
                if let Some(thread) = remove_instr_range(&current.threads()[tix], start, end) {
                    let mut threads = current.threads().to_vec();
                    threads[tix] = thread;
                    if let Some(next) = rebuild(&current, None, None, Some(threads)) {
                        if keeps_failing(&next) {
                            current = next;
                            removed_any = true;
                            continue; // retry the same window
                        }
                    }
                }
                start = end;
            }
            if chunk == 1 {
                if !removed_any {
                    break;
                }
            } else if !removed_any {
                chunk /= 2;
            }
        }
    }

    // Pass 3: operand and initial-value simplification (single sweep each;
    // simplifications are independent).
    for tix in 0..current.threads().len() {
        for pc in 0..current.threads()[tix].code.len() {
            // Candidates are regenerated from the *current* instruction
            // after each acceptance, so one simplification never reverts
            // another; every candidate strictly simplifies, so this
            // terminates.
            loop {
                let mut accepted = false;
                for candidate in simplify_instr(&current.threads()[tix].code[pc]) {
                    let mut threads = current.threads().to_vec();
                    threads[tix].code[pc] = candidate;
                    if let Some(next) = rebuild(&current, None, None, Some(threads)) {
                        if keeps_failing(&next) {
                            current = next;
                            accepted = true;
                            break;
                        }
                    }
                }
                if !accepted {
                    break;
                }
            }
        }
    }
    for vix in 0..current.vars().len() {
        if current.vars()[vix].init != 0 {
            let mut vars = current.vars().to_vec();
            vars[vix].init = 0;
            if let Some(next) = rebuild(&current, Some(vars), None, None) {
                if keeps_failing(&next) {
                    current = next;
                }
            }
        }
    }

    // Cleanup: drop unreferenced declarations (ids renumbered).
    let stripped = strip_unused_decls(&current);
    if keeps_failing(&stripped) {
        current = stripped;
    }
    current
}

/// Rebuilds a program with some parts replaced; `None` on validation
/// failure (the candidate is then simply skipped).
fn rebuild(
    base: &Program,
    vars: Option<Vec<VarDecl>>,
    mutexes: Option<Vec<MutexDecl>>,
    threads: Option<Vec<ThreadDef>>,
) -> Option<Program> {
    Program::new(
        base.name(),
        vars.unwrap_or_else(|| base.vars().to_vec()),
        mutexes.unwrap_or_else(|| base.mutexes().to_vec()),
        threads.unwrap_or_else(|| base.threads().to_vec()),
    )
    .ok()
}

/// Removes `code[start..end]`, remapping every jump target across the gap:
/// targets beyond the range shift left, targets inside collapse onto the
/// cut point. Returns `None` for empty ranges.
fn remove_instr_range(thread: &ThreadDef, start: usize, end: usize) -> Option<ThreadDef> {
    if start >= end || end > thread.code.len() {
        return None;
    }
    let width = end - start;
    let remap = |target: usize| {
        if target >= end {
            target - width
        } else if target > start {
            start
        } else {
            target
        }
    };
    let code: Vec<Instr> = thread
        .code
        .iter()
        .enumerate()
        .filter(|(pc, _)| *pc < start || *pc >= end)
        .map(|(_, instr)| match instr {
            Instr::Jump { target } => Instr::Jump {
                target: remap(*target),
            },
            Instr::Branch {
                cond,
                target,
                when_zero,
            } => Instr::Branch {
                cond: *cond,
                target: remap(*target),
                when_zero: *when_zero,
            },
            other => other.clone(),
        })
        .collect();
    Some(ThreadDef {
        name: thread.name.clone(),
        code,
    })
}

/// Candidate simplifications of one instruction, cheapest-first.
fn simplify_instr(instr: &Instr) -> Vec<Instr> {
    let zero = Operand::Const(0);
    let simpler = |op: &Operand| match op {
        Operand::Reg(_) => Some(zero),
        Operand::Const(v) if *v != 0 => Some(zero),
        _ => None,
    };
    match instr {
        Instr::Store { var, src } => simpler(src)
            .map(|src| Instr::Store { var: *var, src })
            .into_iter()
            .collect(),
        Instr::Set { dst, src } => simpler(src)
            .map(|src| Instr::Set { dst: *dst, src })
            .into_iter()
            .collect(),
        Instr::Bin { dst, op, lhs, rhs } => {
            let mut out = vec![Instr::Set {
                dst: *dst,
                src: zero,
            }];
            if let Some(lhs) = simpler(lhs) {
                out.push(Instr::Bin {
                    dst: *dst,
                    op: *op,
                    lhs,
                    rhs: *rhs,
                });
            }
            if let Some(rhs) = simpler(rhs) {
                out.push(Instr::Bin {
                    dst: *dst,
                    op: *op,
                    lhs: *lhs,
                    rhs,
                });
            }
            out
        }
        Instr::Un { dst, .. } => vec![Instr::Set {
            dst: *dst,
            src: zero,
        }],
        Instr::Branch {
            cond,
            target,
            when_zero,
        } => simpler(cond)
            .map(|cond| Instr::Branch {
                cond,
                target: *target,
                when_zero: *when_zero,
            })
            .into_iter()
            .collect(),
        Instr::Assert { cond, msg } => {
            let mut out = Vec::new();
            if msg != "shrunk" {
                out.push(Instr::Assert {
                    cond: *cond,
                    msg: "shrunk".to_string(),
                });
            }
            if let Some(cond) = simpler(cond) {
                out.push(Instr::Assert {
                    cond,
                    msg: msg.clone(),
                });
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Drops variables and mutexes no instruction references, renumbering the
/// remaining ids.
fn strip_unused_decls(program: &Program) -> Program {
    let mut var_used = vec![false; program.vars().len()];
    let mut mutex_used = vec![false; program.mutexes().len()];
    for thread in program.threads() {
        for instr in &thread.code {
            match instr {
                Instr::Load { var, .. } | Instr::Store { var, .. } => {
                    var_used[var.index()] = true;
                }
                Instr::Lock(m) | Instr::Unlock(m) => mutex_used[m.index()] = true,
                _ => {}
            }
        }
    }
    let var_map: Vec<Option<VarId>> = {
        let mut next = 0u16;
        var_used
            .iter()
            .map(|used| {
                used.then(|| {
                    let id = VarId(next);
                    next += 1;
                    id
                })
            })
            .collect()
    };
    let mutex_map: Vec<Option<MutexId>> = {
        let mut next = 0u16;
        mutex_used
            .iter()
            .map(|used| {
                used.then(|| {
                    let id = MutexId(next);
                    next += 1;
                    id
                })
            })
            .collect()
    };
    let vars: Vec<VarDecl> = program
        .vars()
        .iter()
        .zip(&var_used)
        .filter(|(_, used)| **used)
        .map(|(v, _)| v.clone())
        .collect();
    let mutexes: Vec<MutexDecl> = program
        .mutexes()
        .iter()
        .zip(&mutex_used)
        .filter(|(_, used)| **used)
        .map(|(m, _)| m.clone())
        .collect();
    let threads: Vec<ThreadDef> = program
        .threads()
        .iter()
        .map(|t| ThreadDef {
            name: t.name.clone(),
            code: t
                .code
                .iter()
                .map(|instr| match instr {
                    Instr::Load { dst, var } => Instr::Load {
                        dst: *dst,
                        var: var_map[var.index()].expect("referenced var kept"),
                    },
                    Instr::Store { var, src } => Instr::Store {
                        var: var_map[var.index()].expect("referenced var kept"),
                        src: *src,
                    },
                    Instr::Lock(m) => Instr::Lock(mutex_map[m.index()].expect("kept")),
                    Instr::Unlock(m) => Instr::Unlock(mutex_map[m.index()].expect("kept")),
                    other => other.clone(),
                })
                .collect(),
        })
        .collect();
    Program::new(program.name(), vars, mutexes, threads)
        .expect("stripping unused declarations preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, ExploreConfig, Explorer};
    use lazylocks_model::{ProgramBuilder, Reg};

    /// AB-BA deadlock buried in noise: extra threads, extra instructions,
    /// decorative operands.
    fn noisy_deadlock() -> Program {
        let mut b = ProgramBuilder::new("noisy");
        let x = b.var("x", 3);
        let y = b.var("y", 9);
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        let unused = b.mutex("unused");
        let _ = unused;
        b.thread("T1", |t| {
            t.store(x, 41);
            t.lock(l0);
            t.lock(l1);
            t.store(y, Reg(0));
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.load(Reg(0), y);
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        b.thread("Noise", |t| {
            t.store(x, 1);
            t.store(y, 2);
            t.set(Reg(0), 5);
        });
        b.build()
    }

    fn deadlocks(p: &Program) -> bool {
        DfsEnumeration
            .explore(p, &ExploreConfig::with_limit(50_000))
            .deadlocks
            > 0
    }

    #[test]
    fn shrinks_deadlock_to_the_lock_skeleton() {
        let p = noisy_deadlock();
        assert!(deadlocks(&p));
        let small = shrink_program(&p, deadlocks);
        assert!(deadlocks(&small), "shrunk program still deadlocks");
        // The minimal blocked shape is two threads racing for one lock
        // with no release: the winner finishes holding it, the loser
        // blocks forever. Everything else goes.
        assert_eq!(small.thread_count(), 2, "{}", small.to_source());
        assert!(
            small.instruction_count() <= 2,
            "near-minimal: {}",
            small.to_source()
        );
        assert!(small.vars().is_empty(), "unused vars dropped");
        assert_eq!(small.mutexes().len(), 1, "one mutex suffices");
        // And the result is still a valid, printable program.
        let reparsed = Program::parse(&small.to_source()).unwrap();
        assert_eq!(small, reparsed);
    }

    #[test]
    fn shrinks_assertion_fault_and_simplifies_operands() {
        let mut b = ProgramBuilder::new("assertive");
        let x = b.var("x", 0);
        let noise = b.var("noise", 44);
        b.thread("T1", |t| {
            t.store(noise, 17);
            t.store(x, 1);
        });
        b.thread("T2", |t| {
            t.load(Reg(0), noise);
            t.load(Reg(1), x);
            t.assert_true(Reg(1), "x must already be set by T1");
        });
        let p = b.build();
        let faults = |p: &Program| {
            DfsEnumeration
                .explore(p, &ExploreConfig::with_limit(50_000))
                .faulted_schedules
                > 0
        };
        assert!(faults(&p));
        let small = shrink_program(&p, faults);
        assert!(faults(&small));
        // The fault needs only the assert itself (condition shrunk to 0).
        assert!(small.instruction_count() <= 2, "{}", small.to_source());
        let has_shrunk_msg = small
            .threads()
            .iter()
            .flat_map(|t| &t.code)
            .any(|i| matches!(i, Instr::Assert { msg, .. } if msg == "shrunk"));
        assert!(has_shrunk_msg, "{}", small.to_source());
    }

    #[test]
    fn jump_targets_survive_instruction_removal() {
        let mut b = ProgramBuilder::new("jumpy");
        let x = b.var("x", 0);
        b.thread("T", |t| {
            let out = t.label();
            t.load(Reg(0), x);
            t.branch_if(Reg(0), out);
            t.store(x, 1);
            t.store(x, 2);
            t.bind(out);
            t.store(x, 3);
        });
        let p = b.build();
        let thread = &p.threads()[0];
        // Remove the two middle stores; the branch target (4) crosses the
        // gap and must shift to 2.
        let shrunk = remove_instr_range(thread, 2, 4).unwrap();
        let rebuilt = Program::new("jumpy", p.vars().to_vec(), vec![], vec![shrunk]).unwrap();
        match rebuilt.threads()[0].code[1] {
            Instr::Branch { target, .. } => assert_eq!(target, 2),
            ref other => panic!("{other:?}"),
        }
        // Removing the range containing the target collapses it in-range.
        let shrunk = remove_instr_range(thread, 3, 5).unwrap();
        let rebuilt = Program::new("jumpy", p.vars().to_vec(), vec![], vec![shrunk]).unwrap();
        match rebuilt.threads()[0].code[1] {
            Instr::Branch { target, .. } => assert_eq!(target, 3),
            ref other => panic!("{other:?}"),
        }
        // Out-of-range and empty windows are rejected.
        assert!(remove_instr_range(thread, 3, 6).is_none());
        assert!(remove_instr_range(thread, 2, 2).is_none());
    }

    #[test]
    fn strip_unused_renumbers_references() {
        let mut b = ProgramBuilder::new("strip");
        let _dead = b.var("dead", 0);
        let live = b.var("live", 0);
        let _ghost = b.mutex("ghost");
        let m = b.mutex("m");
        b.thread("T", |t| {
            t.with_lock(m, |t| t.store(live, 1));
        });
        let p = b.build();
        let stripped = strip_unused_decls(&p);
        assert_eq!(stripped.vars().len(), 1);
        assert_eq!(stripped.vars()[0].name, "live");
        assert_eq!(stripped.mutexes().len(), 1);
        assert_eq!(stripped.mutexes()[0].name, "m");
        assert_eq!(
            stripped.threads()[0].code[1],
            Instr::Store {
                var: VarId(0),
                src: Operand::Const(1)
            }
        );
        assert_eq!(stripped.threads()[0].code[0], Instr::Lock(MutexId(0)));
        stripped.validate().unwrap();
    }
}
