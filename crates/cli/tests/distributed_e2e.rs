//! End-to-end tests for distributed exploration: a `lazylocks serve
//! --distributed` coordinator plus real `lazylocks worker` processes on
//! localhost. The suite exercises the robustness headline claims —
//! SIGKILL-mid-lease reassignment, zombie-result fencing, wire-fault
//! retries, token auth, journal single-ownership — and, above all, the
//! determinism contract: the coordinator-leased run produces the same
//! stats, verdict and bugs as the sequential engine at every fleet size
//! and under every crash interleaving.

use lazylocks_server::Client;
use lazylocks_trace::{FaultPlan, Json};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The AB-BA deadlock, as wire-format `.llk` source.
const DEADLOCK: &str = "\
program abba
mutex a
mutex b
thread T1 {
  lock a
  lock b
  unlock b
  unlock a
}
thread T2 {
  lock b
  lock a
  unlock a
  unlock b
}
";

/// Bug-free with a wide state space — enough schedules that a job is
/// reliably mid-lease whenever the test pulls a trigger.
const WIDE: &str = "\
program wide
var x = 0
mutex a
thread T1 {
  lock a
  store x = 1
  unlock a
  lock a
  store x = 1
  unlock a
  lock a
  store x = 1
  unlock a
}
thread T2 {
  lock a
  store x = 2
  unlock a
  lock a
  store x = 2
  unlock a
  lock a
  store x = 2
  unlock a
}
thread T3 {
  lock a
  store x = 3
  unlock a
  lock a
  store x = 3
  unlock a
  lock a
  store x = 3
  unlock a
}
thread T4 {
  lock a
  store x = 4
  unlock a
  lock a
  store x = 4
  unlock a
  lock a
  store x = 4
  unlock a
}
";

/// A running daemon plus the kill-on-drop guard.
struct Daemon {
    child: Child,
    addr: String,
    /// Cleared once the test has shut the daemon down itself.
    armed: bool,
}

impl Daemon {
    /// Spawns `lazylocks serve <extra...>` on an ephemeral port and
    /// waits for the listening line.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_lazylocks"));
        cmd.arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg("2")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn lazylocks serve");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("daemon printed a line")
            .expect("readable stdout");
        let addr = first
            .rsplit(' ')
            .next()
            .expect("listening line ends with the address")
            .to_string();
        assert!(
            first.contains("listening on"),
            "unexpected first line: {first}"
        );
        // Keep draining stdout so the daemon never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        Daemon {
            child,
            addr,
            armed: true,
        }
    }

    fn client(&self) -> Client {
        Client::new(self.addr.clone())
    }

    /// `POST /shutdown`, then requires the process to exit cleanly.
    fn shutdown_and_join(mut self) {
        let (status, _) = self.client().shutdown().expect("shutdown call");
        assert_eq!(status, 200);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(exit) => {
                    assert!(exit.success(), "daemon exited with {exit}");
                    break;
                }
                None if Instant::now() > deadline => {
                    self.child.kill().ok();
                    panic!("daemon did not drain and exit within 60s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        self.armed = false;
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.armed {
            self.child.kill().ok();
            self.child.wait().ok();
        }
    }
}

/// A `lazylocks worker` process, killed on drop. Workers never exit on
/// their own (absent `--max-slices`), so every test reaps its fleet.
struct Worker {
    child: Child,
}

impl Worker {
    fn spawn(addr: &str, extra: &[&str]) -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_lazylocks"))
            .arg("worker")
            .arg("--addr")
            .arg(addr)
            .arg("--poll-ms")
            .arg("10")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn lazylocks worker");
        let stdout = child.stdout.take().expect("captured stdout");
        std::thread::spawn(
            move || {
                for _ in BufReader::new(stdout).lines().map_while(Result::ok) {}
            },
        );
        Worker { child }
    }

    /// SIGKILL: no drain, no result upload, no goodbye.
    fn kill_nine(&mut self) {
        self.child.kill().expect("kill -9 the worker");
        self.child.wait().expect("reap");
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn job_body(program: &str, spec: &str, limit: usize) -> Json {
    Json::obj([
        ("program", Json::Str(program.to_string())),
        ("spec", Json::Str(spec.to_string())),
        ("limit", Json::Int(limit as i128)),
        ("seed", Json::Int(7)),
        ("stop_on_bug", Json::Bool(false)),
        ("minimize", Json::Bool(false)),
    ])
}

/// Reads one counter from `GET /metrics?format=json` by family name.
fn counter(client: &Client, name: &str) -> u64 {
    let (status, doc) = client.metrics_json().expect("metrics");
    assert_eq!(status, 200);
    doc.get("metrics")
        .and_then(Json::as_arr)
        .and_then(|metrics| {
            metrics
                .iter()
                .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
        })
        .and_then(|m| m.get("value"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Polls `predicate` until it holds or the deadline passes.
fn wait_until(what: &str, mut predicate: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !predicate() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The determinism-relevant projection of a result document: verdict,
/// stats and bugs. (Whole-document comparison is only meaningful between
/// two *distributed* runs — sequential documents additionally embed
/// process-local metrics/profile sections that a split run cannot
/// reproduce.)
fn projection(detail: &Json) -> (String, String, String) {
    let result = detail.get("result").expect("result document");
    (
        result
            .get("verdict")
            .and_then(Json::as_str)
            .expect("verdict")
            .to_string(),
        result.get("stats").expect("stats").encode(),
        result
            .get("bugs")
            .map(Json::encode)
            .unwrap_or_else(|| "[]".to_string()),
    )
}

/// Plays a worker in-process: claims leases, runs slices via the same
/// [`lazylocks_server::run_slice`] the real worker binary uses, and
/// uploads epoch-stamped results until the job reaches a terminal state.
fn drive_job(client: &Client, job: u64, worker: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "drive_job({job}) made no terminal progress"
        );
        if let Some(grant) = client.claim_lease(worker).expect("claim") {
            let lease = grant.get("lease").and_then(Json::as_u64).expect("lease id");
            let epoch = grant.get("epoch").and_then(Json::as_u64).expect("epoch");
            let mut result = lazylocks_server::run_slice(&grant).expect("run slice");
            stamp(&mut result, epoch, worker);
            let (status, _) = client.lease_result(lease, &result).expect("upload");
            assert!(status == 200 || status == 409, "unexpected status {status}");
            continue;
        }
        let (status, detail) = client.job(job).expect("job detail");
        assert_eq!(status, 200);
        match detail.get("state").and_then(Json::as_str) {
            Some("done") | Some("cancelled") | Some("failed") => return detail,
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Adds the fencing fields a worker stamps onto a slice result.
fn stamp(result: &mut Json, epoch: u64, worker: &str) {
    if let Json::Obj(pairs) = result {
        pairs.push(("epoch".to_string(), Json::Int(epoch as i128)));
        pairs.push(("worker".to_string(), Json::Str(worker.to_string())));
    }
}

/// With no workers at all, the coordinator's grace takeover explores
/// every lease in-process — a job always terminates — and the sliced
/// run is stat-identical to the sequential engine, for both sleep modes.
#[test]
fn zero_workers_degrade_to_inline_slices_that_match_sequential() {
    let sequential = Daemon::spawn(&[]);
    let distributed = Daemon::spawn(&["--distributed", "--slice", "7", "--grace-ms", "25"]);
    for spec in ["dpor(sleep=true)", "dpor(sleep=false)"] {
        let body = job_body(DEADLOCK, spec, 10_000);
        let reference = {
            let client = sequential.client();
            let id = client.submit(&body).expect("sequential submit");
            client.wait(id, Duration::from_millis(10)).expect("wait")
        };
        let distributed_detail = {
            let client = distributed.client();
            let id = client.submit(&body).expect("distributed submit");
            client.wait(id, Duration::from_millis(10)).expect("wait")
        };
        assert_eq!(
            projection(&reference),
            projection(&distributed_detail),
            "spec {spec}: sliced inline exploration diverged from sequential"
        );
    }
    // The degraded path really ran inline: takeovers were metered.
    assert!(counter(&distributed.client(), "lazylocks_lease_inline_slices_total") > 0);
    distributed.shutdown_and_join();
    sequential.shutdown_and_join();
}

/// Fleets of 1, 2 and 4 workers all produce byte-identical result
/// documents, each matching the sequential engine's stats and bugs.
#[test]
fn every_fleet_size_produces_the_identical_document() {
    let body = job_body(DEADLOCK, "dpor(sleep=true)", 10_000);
    let reference = {
        let sequential = Daemon::spawn(&[]);
        let client = sequential.client();
        let id = client.submit(&body).expect("sequential submit");
        let detail = client.wait(id, Duration::from_millis(10)).expect("wait");
        sequential.shutdown_and_join();
        projection(&detail)
    };

    let mut documents = Vec::new();
    for fleet in [1usize, 2, 4] {
        // A long grace keeps the coordinator from exploring inline: the
        // workers demonstrably did the work.
        let daemon = Daemon::spawn(&["--distributed", "--slice", "9", "--grace-ms", "60000"]);
        let workers: Vec<Worker> = (0..fleet)
            .map(|_| Worker::spawn(&daemon.addr, &[]))
            .collect();
        let client = daemon.client();
        let id = client.submit(&body).expect("submit");
        let detail = client.wait(id, Duration::from_millis(10)).expect("wait");
        assert_eq!(
            projection(&detail),
            reference,
            "fleet of {fleet} diverged from the sequential engine"
        );
        documents.push(detail.get("result").expect("result").encode());
        drop(workers);
        daemon.shutdown_and_join();
    }
    assert_eq!(documents[0], documents[1], "1-worker vs 2-worker document");
    assert_eq!(documents[0], documents[2], "1-worker vs 4-worker document");
}

/// The headline crash claim: SIGKILL a worker mid-lease; the coordinator
/// fences the dead holder's epoch and reassigns, a replacement finishes
/// the job, and the final document is byte-identical to an uninterrupted
/// distributed run of the same body.
#[test]
fn sigkill_mid_lease_reassigns_and_preserves_the_result() {
    // Slices big enough that a worker is almost always mid-slice; a
    // short TTL so the dead holder is fenced quickly; a long grace so
    // recovery provably flows through worker reassignment, not the
    // coordinator's inline fallback.
    let daemon = Daemon::spawn(&[
        "--distributed",
        "--slice",
        "400",
        "--lease-ttl-ms",
        "300",
        "--grace-ms",
        "60000",
    ]);
    let client = daemon.client();
    let body = job_body(WIDE, "dpor(sleep=true)", 2_000);

    // The uninterrupted reference, on the same coordinator.
    let mut victim_of = Worker::spawn(&daemon.addr, &[]);
    let reference_id = client.submit(&body).expect("reference submit");
    let reference = client
        .wait(reference_id, Duration::from_millis(10))
        .expect("reference wait");
    let granted_baseline = counter(&client, "lazylocks_leases_granted_total");

    // Submit the victim, wait for its first grant, then kill -9 the
    // holder mid-slice.
    let victim = client.submit(&body).expect("victim submit");
    wait_until("the victim's first lease grant", || {
        counter(&client, "lazylocks_leases_granted_total") > granted_baseline
    });
    victim_of.kill_nine();

    // The coordinator notices the silent holder at TTL expiry and fences
    // its epoch.
    wait_until("lease reassignment after the kill", || {
        counter(&client, "lazylocks_leases_reassigned_total") > 0
    });

    // A replacement worker picks the fenced lease up and finishes.
    let _rescuer = Worker::spawn(&daemon.addr, &[]);
    let detail = client
        .wait(victim, Duration::from_millis(10))
        .expect("victim wait");
    assert_eq!(detail.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(
        detail.get("result").expect("result").encode(),
        reference.get("result").expect("result").encode(),
        "the crash-interrupted run must be byte-identical to the uninterrupted one"
    );
    daemon.shutdown_and_join();
}

/// Zombie fencing over the real wire: a worker that went silent past its
/// TTL is fenced; its late upload is rejected 409 by epoch, while the
/// current holder's duplicate upload is acknowledged idempotently.
#[test]
fn zombie_results_are_rejected_and_duplicates_acknowledged() {
    let daemon = Daemon::spawn(&[
        "--distributed",
        "--slice",
        "5",
        "--lease-ttl-ms",
        "150",
        "--grace-ms",
        "60000",
    ]);
    let client = daemon.client();
    let job = client
        .submit(&job_body(DEADLOCK, "dpor(sleep=true)", 10_000))
        .expect("submit");

    // The zombie claims the first lease, computes its slice… and stalls
    // (no renewals) until the coordinator fences it.
    let grant = {
        let mut grant = None;
        wait_until("the first lease offer", || {
            grant = client.claim_lease("zombie").expect("claim");
            grant.is_some()
        });
        grant.unwrap()
    };
    let lease = grant.get("lease").and_then(Json::as_u64).expect("lease id");
    let stale_epoch = grant.get("epoch").and_then(Json::as_u64).expect("epoch");
    let mut late_result = lazylocks_server::run_slice(&grant).expect("zombie slice");
    stamp(&mut late_result, stale_epoch, "zombie");
    wait_until("the zombie to be fenced", || {
        counter(&client, "lazylocks_leases_reassigned_total") > 0
    });

    // A live worker re-claims the same lease under a bumped epoch.
    let regrant = client
        .claim_lease("rescuer")
        .expect("re-claim")
        .expect("the fenced lease is claimable again");
    assert_eq!(
        regrant.get("lease").and_then(Json::as_u64),
        Some(lease),
        "the same subtree is re-offered"
    );
    let epoch = regrant.get("epoch").and_then(Json::as_u64).expect("epoch");
    assert!(epoch > stale_epoch, "reassignment must bump the epoch");

    // The zombie's late upload is fenced out…
    let (status, body) = client.lease_result(lease, &late_result).expect("upload");
    assert_eq!(
        status,
        409,
        "stale-epoch result accepted: {}",
        body.encode()
    );
    let zombies = counter(&client, "lazylocks_lease_zombie_results_total");
    assert!(zombies > 0, "the rejection must be metered");

    // …the rescuer's upload lands, and a resend of the same document is
    // acknowledged as a duplicate without being re-applied.
    let mut result = lazylocks_server::run_slice(&regrant).expect("rescuer slice");
    stamp(&mut result, epoch, "rescuer");
    let (status, ack) = client.lease_result(lease, &result).expect("upload");
    assert_eq!(status, 200);
    assert_eq!(ack.get("accepted").and_then(Json::as_bool), Some(true));
    let (status, ack) = client.lease_result(lease, &result).expect("re-upload");
    assert_eq!(status, 200);
    assert_eq!(ack.get("duplicate").and_then(Json::as_bool), Some(true));

    // Play an honest worker for the rest and land the job.
    let detail = drive_job(&client, job, "rescuer");
    assert_eq!(detail.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(
        detail
            .get("result")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str),
        Some("bug-found")
    );
    daemon.shutdown_and_join();
}

/// Injected wire faults — a torn request write and a truncated response —
/// are absorbed by the client's classified retries: the lease protocol
/// recovers with no double-applied effect and the job's document still
/// matches a fault-free run.
#[test]
fn wire_faults_on_the_lease_path_are_retried_and_recovered() {
    let daemon = Daemon::spawn(&["--distributed", "--slice", "6", "--grace-ms", "60000"]);
    let plain = daemon.client();
    let body = job_body(DEADLOCK, "dpor(sleep=true)", 10_000);

    // Fault-free reference, driven by the in-process worker.
    let reference_id = plain.submit(&body).expect("reference submit");
    let reference = drive_job(&plain, reference_id, "steady");

    let faults = FaultPlan::armed();
    let faulty = daemon
        .client()
        .with_retries(4, Duration::from_millis(5))
        .with_faults(faults.clone());
    let job = plain.submit(&body).expect("submit");

    // Torn request write on the claim: the connection drops after a
    // 10-byte prefix; the claim is idempotent, so the client resends.
    let grant = {
        let mut grant = None;
        wait_until("a claim despite the torn write", || {
            faults.truncate_next_write(10);
            grant = faulty
                .claim_lease("flaky")
                .expect("claim survives the tear");
            faults.take_torn_write(); // disarm if the claim won before tearing
            grant.is_some()
        });
        grant.unwrap()
    };
    let lease = grant.get("lease").and_then(Json::as_u64).expect("lease id");
    let epoch = grant.get("epoch").and_then(Json::as_u64).expect("epoch");

    // Truncated response on the result upload: the server applies the
    // result but the 200 is lost mid-read; the resend is acknowledged as
    // a duplicate — applied once, answered twice.
    let mut result = lazylocks_server::run_slice(&grant).expect("slice");
    stamp(&mut result, epoch, "flaky");
    faults.truncate_next_read(3);
    let (status, ack) = faulty
        .lease_result(lease, &result)
        .expect("upload survives the short read");
    assert_eq!(status, 200);
    assert_eq!(ack.get("accepted").and_then(Json::as_bool), Some(true));
    assert!(faults.injected() >= 2, "both faults must actually fire");

    // Finish clean and compare against the fault-free document.
    let detail = drive_job(&plain, job, "steady");
    assert_eq!(
        detail.get("result").expect("result").encode(),
        reference.get("result").expect("result").encode(),
        "wire faults must not change the result document"
    );
    daemon.shutdown_and_join();
}

/// `serve --token` requires the shared secret on every mutating route;
/// reads stay open, the wrong secret is a 401, and a tokened client (and
/// worker) completes the full job lifecycle.
#[test]
fn token_auth_gates_mutating_routes_end_to_end() {
    let daemon = Daemon::spawn(&["--token", "s3cret", "--distributed", "--grace-ms", "25"]);
    let body = job_body(DEADLOCK, "dpor(sleep=true)", 10_000);

    let anonymous = daemon.client();
    let err = anonymous.submit(&body).expect_err("tokenless submit");
    assert!(err.contains("401"), "{err}");
    let (status, _) = anonymous.health().expect("tokenless read");
    assert_eq!(status, 200, "reads stay open");

    let wrong = daemon.client().with_token(Some("nope".to_string()));
    let err = wrong.submit(&body).expect_err("wrong-token submit");
    assert!(err.contains("401"), "{err}");

    let authed = daemon.client().with_token(Some("s3cret".to_string()));
    let id = authed.submit(&body).expect("authed submit");
    let _worker = Worker::spawn(&daemon.addr, &["--token", "s3cret"]);
    let detail = authed.wait(id, Duration::from_millis(10)).expect("wait");
    assert_eq!(detail.get("state").and_then(Json::as_str), Some("done"));

    // Shutdown is mutating too: the anonymous client cannot stop the
    // daemon, the authed one can.
    let (status, _) = anonymous.shutdown().expect("tokenless shutdown");
    assert_eq!(status, 401);
    let mut daemon = daemon;
    daemon.armed = false;
    let (status, _) = authed.shutdown().expect("authed shutdown");
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match daemon.child.try_wait().expect("try_wait") {
            Some(exit) => {
                assert!(exit.success(), "daemon exited with {exit}");
                break;
            }
            None if Instant::now() > deadline => {
                daemon.child.kill().ok();
                panic!("daemon did not exit after authed shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// A second `serve --journal` on the same journal fails loudly instead
/// of silently corrupting the shared file.
#[test]
fn a_second_serve_on_the_same_journal_fails_loudly() {
    let dir = std::env::temp_dir().join(format!("lazylocks-dist-e2e-lock-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let journal = dir.join("journal.jsonl");

    let owner = Daemon::spawn(&["--journal", journal.to_str().unwrap()]);

    let mut second = Command::new(env!("CARGO_BIN_EXE_lazylocks"))
        .arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--journal")
        .arg(&journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn the contender");
    let deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        match second.try_wait().expect("try_wait") {
            Some(exit) => break exit,
            None if Instant::now() > deadline => {
                second.kill().ok();
                second.wait().ok();
                panic!("the second serve neither exited nor failed within 30s");
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    assert!(!exit.success(), "the second serve must refuse to start");
    let mut stderr = String::new();
    std::io::Read::read_to_string(second.stderr.as_mut().expect("stderr"), &mut stderr)
        .expect("readable stderr");
    assert!(
        stderr.contains("journal"),
        "the refusal must name the journal: {stderr}"
    );

    owner.shutdown_and_join();
    std::fs::remove_dir_all(&dir).ok();
}
