//! End-to-end tests against a real `lazylocks serve` daemon in a fresh
//! process: full job lifecycle with corpus persistence and replay,
//! mid-run cancellation, result determinism, more submissions than
//! workers, and drain-then-exit shutdown.
//!
//! Each test spawns its own daemon on an ephemeral port (parsed from the
//! `listening on <addr>` line) and shuts it down — or kills it on a
//! panic path via the [`Daemon`] drop guard — so no test leaves an
//! orphaned process.

use lazylocks_server::Client;
use lazylocks_trace::{replay_embedded, Json, TraceArtifact};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The AB-BA deadlock, as wire-format `.llk` source.
const DEADLOCK: &str = "\
program abba
mutex a
mutex b
thread T1 {
  lock a
  lock b
  unlock b
  unlock a
}
thread T2 {
  lock b
  lock a
  unlock a
  unlock b
}
";

/// Bug-free but with a state space far too large to finish in a test's
/// lifetime under DFS — the cancellation target.
const WIDE: &str = "\
program wide
var x = 0
mutex a
thread T1 {
  lock a
  store x = 1
  unlock a
  lock a
  store x = 1
  unlock a
  lock a
  store x = 1
  unlock a
}
thread T2 {
  lock a
  store x = 2
  unlock a
  lock a
  store x = 2
  unlock a
  lock a
  store x = 2
  unlock a
}
thread T3 {
  lock a
  store x = 3
  unlock a
  lock a
  store x = 3
  unlock a
  lock a
  store x = 3
  unlock a
}
thread T4 {
  lock a
  store x = 4
  unlock a
  lock a
  store x = 4
  unlock a
  lock a
  store x = 4
  unlock a
}
";

/// A running daemon plus the kill-on-drop guard.
struct Daemon {
    child: Child,
    addr: String,
    /// Cleared once the test has shut the daemon down itself.
    armed: bool,
}

impl Daemon {
    /// Spawns `lazylocks serve` on an ephemeral port and waits for the
    /// listening line.
    fn spawn(workers: usize, corpus: Option<&std::path::Path>) -> Daemon {
        Daemon::spawn_with(workers, corpus, None)
    }

    fn spawn_with(
        workers: usize,
        corpus: Option<&std::path::Path>,
        journal: Option<&std::path::Path>,
    ) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_lazylocks"));
        cmd.arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg(workers.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(dir) = corpus {
            cmd.arg("--corpus").arg(dir);
        }
        if let Some(path) = journal {
            cmd.arg("--journal").arg(path);
        }
        let mut child = cmd.spawn().expect("spawn lazylocks serve");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("daemon printed a line")
            .expect("readable stdout");
        let addr = first
            .rsplit(' ')
            .next()
            .expect("listening line ends with the address")
            .to_string();
        assert!(
            first.contains("listening on"),
            "unexpected first line: {first}"
        );
        // Keep draining stdout so the daemon never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        Daemon {
            child,
            addr,
            armed: true,
        }
    }

    fn client(&self) -> Client {
        Client::new(self.addr.clone())
    }

    /// `POST /shutdown`, then requires the process to exit cleanly.
    fn shutdown_and_join(mut self) {
        let (status, _) = self.client().shutdown().expect("shutdown call");
        assert_eq!(status, 200);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(exit) => {
                    assert!(exit.success(), "daemon exited with {exit}");
                    break;
                }
                None if Instant::now() > deadline => {
                    self.child.kill().ok();
                    panic!("daemon did not drain and exit within 60s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        self.armed = false;
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.armed {
            self.child.kill().ok();
            self.child.wait().ok();
        }
    }
}

fn job_body(program: &str, spec: &str, limit: usize, stop_on_bug: bool) -> Json {
    Json::obj([
        ("program", Json::Str(program.to_string())),
        ("spec", Json::Str(spec.to_string())),
        ("limit", Json::Int(limit as i128)),
        ("seed", Json::Int(7)),
        ("stop_on_bug", Json::Bool(stop_on_bug)),
        ("minimize", Json::Bool(true)),
    ])
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lazylocks-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn lifecycle_events_artifact_and_replay() {
    let corpus = temp_dir("lifecycle");
    let daemon = Daemon::spawn(2, Some(&corpus));
    let client = daemon.client();

    let (status, health) = client.health().expect("healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    let (status, strategies) = client.strategies().expect("strategies");
    assert_eq!(status, 200);
    assert!(!strategies
        .get("strategies")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());

    let id = client
        .submit(&job_body(DEADLOCK, "dpor", 10_000, false))
        .expect("submit");

    // Poll the event log to completion with the cursor protocol; the
    // stream must include the bug and terminate with a done event.
    let mut since = 0u64;
    let mut kinds: Vec<String> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "job never finished: {kinds:?}");
        let (status, page) = client.events(id, since).expect("events");
        assert_eq!(status, 200);
        for event in page.get("events").unwrap().as_arr().unwrap() {
            kinds.push(event.get("type").unwrap().as_str().unwrap().to_string());
        }
        since = page.get("next").unwrap().as_u64().unwrap();
        if kinds.last().map(String::as_str) == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(kinds.starts_with(&["queued".to_string(), "running".to_string()]));
    assert!(kinds.contains(&"bug".to_string()), "{kinds:?}");

    let (status, detail) = client.job(id).expect("job detail");
    assert_eq!(status, 200);
    assert_eq!(detail.get("state").unwrap().as_str(), Some("done"));
    let result = detail.get("result").unwrap();
    assert_eq!(result.get("verdict").unwrap().as_str(), Some("bug-found"));

    // The bug was persisted into the corpus and replays in-process.
    let traces = result.get("traces").unwrap().as_arr().unwrap();
    assert_eq!(traces.len(), 1, "one distinct bug, one artifact");
    let path = std::path::PathBuf::from(traces[0].as_str().unwrap());
    assert!(path.starts_with(&corpus), "{path:?} not under {corpus:?}");
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    let artifact = TraceArtifact::parse(&text).expect("artifact parses");
    assert!(artifact.minimized);
    assert!(
        replay_embedded(&artifact)
            .expect("replay runs")
            .reproduced(),
        "persisted artifact must reproduce the deadlock"
    );

    // Unknown ids and routes answer structured errors, not hangups.
    let (status, _) = client.job(999).expect("missing job");
    assert_eq!(status, 404);
    let (status, _) = client.call("GET", "/nope", None).expect("bad route");
    assert_eq!(status, 404);
    let (status, _) = client.call("PUT", "/jobs", None).expect("bad method");
    assert_eq!(status, 405);

    daemon.shutdown_and_join();
    std::fs::remove_dir_all(&corpus).ok();
}

#[test]
fn mid_run_cancellation_reports_partial_stats() {
    let daemon = Daemon::spawn(1, None);
    let client = daemon.client();

    // The daemon rejects budgets above --max-job-budget outright.
    let err = client
        .submit(&job_body(WIDE, "dfs", 100_000_000, false))
        .expect_err("over-budget submission must be rejected");
    assert!(err.contains("400"), "{err}");

    let id = client
        .submit(&job_body(WIDE, "dfs", 1_000_000, false))
        .expect("submit");

    // Wait until the job is actually running, then cancel it.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "job never started");
        let (_, detail) = client.job(id).expect("job detail");
        if detail.get("state").unwrap().as_str() == Some("running") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, reply) = client.cancel(id).expect("cancel");
    assert_eq!(status, 200);
    assert_eq!(reply.get("state").unwrap().as_str(), Some("running"));

    let detail = client
        .wait(id, Duration::from_millis(25))
        .expect("wait for terminal state");
    assert_eq!(detail.get("state").unwrap().as_str(), Some("cancelled"));
    let result = detail.get("result").unwrap();
    assert_eq!(result.get("verdict").unwrap().as_str(), Some("cancelled"));
    let stats = result.get("stats").unwrap();
    assert_eq!(stats.get("cancelled").unwrap().as_bool(), Some(true));
    // Partial: it stopped well short of the budget.
    assert!(stats.get("schedules").unwrap().as_u64().unwrap() < 1_000_000);

    // Cancelling a finished job is a no-op that reports the final state.
    let (status, reply) = client.cancel(id).expect("re-cancel");
    assert_eq!(status, 200);
    assert_eq!(reply.get("state").unwrap().as_str(), Some("cancelled"));

    daemon.shutdown_and_join();
}

#[test]
fn identical_submissions_produce_identical_results() {
    let corpus = temp_dir("determinism");
    let daemon = Daemon::spawn(2, Some(&corpus));
    let client = daemon.client();

    let body = job_body(DEADLOCK, "dpor(sleep=true)", 10_000, false);
    let first = client.submit(&body).expect("submit #1");
    let second = client.submit(&body).expect("submit #2");
    assert_ne!(first, second, "distinct jobs get distinct ids");

    let a = client
        .wait(first, Duration::from_millis(25))
        .expect("job 1");
    let b = client
        .wait(second, Duration::from_millis(25))
        .expect("job 2");
    assert_eq!(a.get("state").unwrap().as_str(), Some("done"));
    // Same program, spec, seed and budget — the result documents must be
    // byte-identical: wall time is scrubbed server-side and the corpus
    // dedups the artifact to one fingerprint-keyed path.
    assert_eq!(
        a.get("result").unwrap().encode(),
        b.get("result").unwrap().encode()
    );

    daemon.shutdown_and_join();
    std::fs::remove_dir_all(&corpus).ok();
}

#[test]
fn kill_nine_mid_job_recovers_and_reruns_to_the_identical_result() {
    let dir = temp_dir("recovery");
    let corpus = dir.join("corpus");
    let journal = dir.join("journal.jsonl");
    std::fs::create_dir_all(&corpus).expect("create corpus dir");

    let mut daemon = Daemon::spawn_with(2, Some(&corpus), Some(&journal));
    let client = daemon.client();

    // The reference: an uninterrupted run of the body we will later crash.
    let body = job_body(DEADLOCK, "dpor(sleep=true)", 10_000, false);
    let reference_id = client.submit(&body).expect("reference submit");
    let reference = client
        .wait(reference_id, Duration::from_millis(25))
        .expect("reference result");
    assert_eq!(reference.get("state").unwrap().as_str(), Some("done"));
    let reference_result = reference.get("result").unwrap().encode();

    // Pin both workers on effectively-unbounded jobs and queue the victim
    // behind them, so the kill lands with two jobs mid-run and one queued.
    let blocker_body = job_body(WIDE, "dfs", 1_000_000, false);
    let blockers = [
        client.submit(&blocker_body).expect("blocker 1"),
        client.submit(&blocker_body).expect("blocker 2"),
    ];
    let victim = client.submit(&body).expect("victim submit");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "blockers never started");
        let running = blockers.iter().all(|id| {
            let (_, detail) = client.job(*id).expect("blocker detail");
            detail.get("state").unwrap().as_str() == Some("running")
        });
        if running {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let (_, detail) = client.job(victim).expect("victim detail");
    assert_eq!(detail.get("state").unwrap().as_str(), Some("queued"));

    // SIGKILL: no drain, no journal finalisation, no goodbye.
    daemon.child.kill().expect("kill -9 the daemon");
    daemon.child.wait().expect("reap");
    daemon.armed = false;
    drop(daemon);

    // A fresh process on the same journal re-enqueues all three
    // unfinished jobs under their original ids...
    let daemon = Daemon::spawn_with(2, Some(&corpus), Some(&journal));
    let client = daemon.client();
    for id in blockers {
        let (status, _) = client.job(id).expect("recovered blocker");
        assert_eq!(status, 200, "blocker {id} was not recovered");
        let (status, _) = client.cancel(id).expect("cancel blocker");
        assert_eq!(status, 200);
    }
    let (status, _) = client.job(victim).expect("recovered victim");
    assert_eq!(status, 200, "victim was not recovered");
    // ...while the job that completed before the crash stays completed.
    let (status, _) = client.job(reference_id).expect("finished job lookup");
    assert_eq!(status, 404, "a completed job must not be resurrected");

    // The recovered victim re-runs to done with a byte-identical result —
    // deterministic exploration plus server-side wall-time scrubbing.
    let detail = client
        .wait(victim, Duration::from_millis(25))
        .expect("victim after recovery");
    assert_eq!(detail.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(detail.get("result").unwrap().encode(), reference_result);

    // Fresh submissions allocate ids strictly above everything journaled.
    let fresh = client.submit(&body).expect("post-recovery submit");
    assert!(fresh > victim, "id {fresh} collides with recovered ids");
    let fresh_detail = client
        .wait(fresh, Duration::from_millis(25))
        .expect("post-recovery result");
    assert_eq!(
        fresh_detail.get("result").unwrap().encode(),
        reference_result
    );

    daemon.shutdown_and_join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn more_jobs_than_workers_all_complete_and_drain_on_shutdown() {
    let daemon = Daemon::spawn(2, None);
    let client = daemon.client();

    let ids: Vec<u64> = (0..6)
        .map(|_| {
            client
                .submit(&job_body(DEADLOCK, "dpor", 10_000, true))
                .expect("submit")
        })
        .collect();
    for id in &ids {
        let detail = client.wait(*id, Duration::from_millis(25)).expect("wait");
        assert_eq!(detail.get("state").unwrap().as_str(), Some("done"));
    }

    // After shutdown the daemon refuses new work while draining.
    let (status, reply) = client.shutdown().expect("shutdown");
    assert_eq!(status, 200);
    assert_eq!(reply.get("status").unwrap().as_str(), Some("draining"));

    let mut daemon = daemon;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match daemon.child.try_wait().expect("try_wait") {
            Some(exit) => {
                assert!(exit.success(), "daemon exited with {exit}");
                daemon.armed = false;
                break;
            }
            None if Instant::now() > deadline => {
                panic!("daemon did not exit after shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}
