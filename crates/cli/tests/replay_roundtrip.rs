//! Fresh-process reproducibility: an artifact written by `lazylocks
//! explore --save-traces` must replay in a *separate* process via
//! `lazylocks replay` and report the same bug class — and replaying
//! against a mutated program must report `program-changed`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lazylocks(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lazylocks"))
        .args(args)
        .output()
        .expect("spawning the lazylocks binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazylocks-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn trace_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn explore_saves_a_trace_that_a_fresh_process_reproduces() {
    let dir = temp_dir("reproduce");
    let dir_str = dir.to_string_lossy().into_owned();

    // Process 1: explore a known-buggy benchmark, saving traces.
    let out = lazylocks(&[
        "explore",
        "--bench",
        "philosophers-naive-2",
        "--strategy",
        "dpor(sleep=true)",
        "--stop-on-bug",
        "--minimize",
        "--save-traces",
        &dir_str,
        "--json",
    ]);
    assert!(out.status.success(), "{out:?}");
    let json = stdout(&out);
    assert!(json.contains("\"verdict\": \"bug-found\""), "{json}");
    assert!(json.contains("\"deadlocks\""), "{json}");
    let files = trace_files(&dir);
    assert_eq!(files.len(), 1, "one artifact for the deadlock: {files:?}");

    // Process 2: replay the artifact file with nothing but the file.
    let out = lazylocks(&["replay", files[0].to_string_lossy().as_ref()]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("reproduced"), "{text}");
    assert!(text.contains("deadlock"), "{text}");

    // Process 3: replay the whole directory, machine-readably.
    let out = lazylocks(&["replay", &dir_str, "--json"]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        stdout(&out).contains("\"verdict\": \"reproduced\""),
        "{}",
        stdout(&out)
    );

    // Process 4: replay against the *same* benchmark by name — still
    // reproduced (registry program == embedded program).
    let out = lazylocks(&[
        "replay",
        files[0].to_string_lossy().as_ref(),
        "--bench",
        "philosophers-naive-2",
    ]);
    assert!(out.status.success(), "{out:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_against_a_mutated_program_reports_program_changed() {
    let dir = temp_dir("mutated");
    let dir_str = dir.to_string_lossy().into_owned();

    let out = lazylocks(&[
        "explore",
        "--bench",
        "accounts-fine-deadlock2",
        "--stop-on-bug",
        "--save-traces",
        &dir_str,
    ]);
    assert!(out.status.success(), "{out:?}");
    let files = trace_files(&dir);
    assert_eq!(files.len(), 1);

    // Mutate: dump the benchmark source, tweak an initial value, and
    // replay the artifact against the mutated program file.
    let out = lazylocks(&["show", "--bench", "accounts-fine-deadlock2"]);
    assert!(out.status.success());
    let source = stdout(&out);
    let mutated = source.replacen("= 100", "= 101", 1);
    assert_ne!(source, mutated, "the source must contain an initial value");
    let mutated_path = dir.join("mutated.llk");
    std::fs::write(&mutated_path, mutated).unwrap();

    let out = lazylocks(&[
        "replay",
        files[0].to_string_lossy().as_ref(),
        "--file",
        mutated_path.to_string_lossy().as_ref(),
    ]);
    assert!(
        !out.status.success(),
        "replay against a mutated program must fail"
    );
    let text = stdout(&out);
    assert!(text.contains("program-changed"), "{text}");

    // A different benchmark also counts as a changed program.
    let out = lazylocks(&[
        "replay",
        files[0].to_string_lossy().as_ref(),
        "--bench",
        "paper-figure1",
    ]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("program-changed"), "{}", stdout(&out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_outcome_is_well_formed_and_machine_readable() {
    let out = lazylocks(&[
        "run",
        "--bench",
        "paper-figure1",
        "--limit",
        "1000",
        "--json",
    ]);
    assert!(out.status.success(), "{out:?}");
    // Parse with the same zero-dependency codec the artifacts use; this is
    // the well-formedness assertion CI pipes the output through.
    let doc = lazylocks_trace::Json::parse(&stdout(&out)).expect("stdout is one JSON document");
    assert_eq!(
        doc.get("verdict").and_then(lazylocks_trace::Json::as_str),
        Some("clean")
    );
    assert!(doc
        .get("stats")
        .and_then(|s| s.get("schedules"))
        .and_then(lazylocks_trace::Json::as_u64)
        .is_some_and(|n| n > 0));
    assert_eq!(
        doc.get("bugs").and_then(lazylocks_trace::Json::as_arr),
        Some(&[][..])
    );
}

#[test]
fn corpus_seed_list_prune_workflow() {
    let dir = temp_dir("corpus-flow");
    let dir_str = dir.to_string_lossy().into_owned();

    let out = lazylocks(&["corpus", "seed", "--dir", &dir_str, "--limit", "20000"]);
    assert!(out.status.success(), "{out:?}");
    let expected = lazylocks_suite::buggy().len();
    let files = trace_files(&dir);
    assert!(
        files.len() >= expected,
        "at least one artifact per buggy benchmark: {} < {expected}",
        files.len()
    );

    // Every seeded artifact replays in this fresh process.
    let out = lazylocks(&["replay", &dir_str]);
    assert!(out.status.success(), "{}", stdout(&out));

    let out = lazylocks(&["corpus", "list", "--dir", &dir_str, "--json"]);
    assert!(out.status.success());
    let doc = lazylocks_trace::Json::parse(&stdout(&out)).unwrap();
    assert_eq!(
        doc.as_arr().map(<[lazylocks_trace::Json]>::len),
        Some(files.len())
    );

    // Corrupt one artifact; prune removes exactly it.
    std::fs::write(dir.join("zz-corrupt.json"), "{ not json").unwrap();
    let out = lazylocks(&["corpus", "prune", "--dir", &dir_str]);
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("removed 1"), "{text}");
    assert_eq!(trace_files(&dir).len(), files.len());

    std::fs::remove_dir_all(&dir).ok();
}
