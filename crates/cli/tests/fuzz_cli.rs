//! End-to-end checks of the `fuzz` subcommand: deterministic JSON across
//! two fresh processes, zero disagreements on the shipped oracle, and a
//! usable repro directory wiring.

use std::path::PathBuf;
use std::process::{Command, Output};

fn lazylocks(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lazylocks"))
        .args(args)
        .output()
        .expect("spawning the lazylocks binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn fuzz_json_is_deterministic_across_processes_and_agrees() {
    let args = [
        "fuzz",
        "--profile",
        "deadlock-prone",
        "--cases",
        "20",
        "--seed",
        "7",
        "--budget",
        "10000",
        "--json",
    ];
    let a = lazylocks(&args);
    assert!(
        a.status.success(),
        "fuzz must exit zero without disagreements: {}",
        String::from_utf8_lossy(&a.stderr)
    );
    let b = lazylocks(&args);
    assert!(b.status.success());
    assert_eq!(stdout(&a), stdout(&b), "two runs must emit identical JSON");

    let text = stdout(&a);
    let doc = lazylocks_trace::Json::parse(&text).expect("fuzz --json emits valid JSON");
    assert_eq!(
        doc.get("format").and_then(lazylocks_trace::Json::as_str),
        Some("lazylocks-fuzz")
    );
    let results = doc
        .get("results")
        .and_then(lazylocks_trace::Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 20);
    for case in results {
        let status = case
            .get("status")
            .and_then(lazylocks_trace::Json::as_str)
            .unwrap();
        assert!(
            status != "disagreed",
            "no shipped strategy may disagree: {text}"
        );
    }
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(
        summary
            .get("disagreed")
            .and_then(lazylocks_trace::Json::as_u64),
        Some(0)
    );
}

#[test]
fn fuzz_save_directory_is_created_and_left_empty_on_agreement() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("lazylocks-fuzz-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = lazylocks(&[
        "fuzz",
        "--profile",
        "branchy",
        "--cases",
        "5",
        "--seed",
        "11",
        "--save",
        dir.to_string_lossy().as_ref(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.is_dir(), "--save creates the corpus directory");
    let artifacts = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(artifacts, 0, "agreement leaves no repro artifacts behind");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_rejects_unknown_profiles() {
    let out = lazylocks(&["fuzz", "--profile", "zen-garden"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("zen-garden") && err.contains("deadlock-prone"),
        "{err}"
    );
}
