//! `lazylocks` — command-line driver for the systematic concurrency tester.
//!
//! ```text
//! lazylocks list [--family NAME]              list the benchmark corpus
//! lazylocks show --bench NAME                 print a benchmark's source
//! lazylocks run (--bench NAME | --file PATH) [--strategy S] [--limit N]
//!               [--preemptions K] [--stop-on-bug] [--seed X]
//!               [--minimize] [--save-traces DIR] [--json]
//! lazylocks explore ...                       alias of `run`
//! lazylocks replay PATH [--bench NAME]        replay trace artifact(s)
//! lazylocks corpus (list | prune | seed)      manage the trace corpus
//! lazylocks compare (--bench NAME | --file PATH) [--limit N]
//! lazylocks races (--bench NAME | --file PATH) [--walks N] [--seed X]
//! lazylocks help
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
