//! Command implementations.

use crate::args::{Command, Target, USAGE};
use lazylocks::{
    detect_races, ExploreConfig, ExploreOutcome, ExploreSession, Observer, Progress,
    StrategyRegistry,
};
use lazylocks_model::Program;
use lazylocks_runtime::run_with_scheduler;
use std::collections::HashMap;
use std::time::Duration;

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List { family } => list(family.as_deref()),
        Command::Strategies => strategies(),
        Command::Show { target } => {
            let program = resolve(&target)?;
            print!("{}", program.to_source());
            Ok(())
        }
        Command::Run {
            target,
            strategy,
            limit,
            preemptions,
            stop_on_bug,
            seed,
            deadline_ms,
            progress,
        } => {
            let program = resolve(&target)?;
            let mut config = ExploreConfig::with_limit(limit).seeded(seed);
            config.preemption_bound = preemptions;
            config.stop_on_bug = stop_on_bug;

            let mut session = ExploreSession::new(&program)
                .with_config(config)
                .progress_every(progress);
            if progress > 0 {
                session = session.observe(PrintProgress);
            }
            if let Some(ms) = deadline_ms {
                session = session.deadline(Duration::from_millis(ms));
            }
            let outcome = session.run_spec(&strategy).map_err(|e| e.to_string())?;
            print_outcome(program.name(), &outcome);
            Ok(())
        }
        Command::Compare { target, limit } => compare(&resolve(&target)?, limit),
        Command::Races {
            target,
            walks,
            seed,
        } => races(&resolve(&target)?, walks, seed),
    }
}

/// Progress observer for `run --progress N`: one status line per tick.
struct PrintProgress;

impl Observer for PrintProgress {
    fn on_progress(&self, p: &Progress) {
        eprintln!(
            "... {} schedules, {} events, {} states, {} bugs",
            p.schedules, p.events, p.unique_states, p.bugs
        );
    }
}

fn resolve(target: &Target) -> Result<Program, String> {
    match target {
        Target::Bench(name) => lazylocks_suite::by_name(name)
            .map(|b| b.program)
            .ok_or_else(|| format!("no benchmark named {name:?}; try `lazylocks list`")),
        Target::Id(id) => lazylocks_suite::by_id(*id)
            .map(|b| b.program)
            .ok_or_else(|| format!("no benchmark with id {id}; the corpus has 1..=79")),
        Target::File(path) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Program::parse(&source).map_err(|e| format!("cannot parse {path}: {e}"))
        }
    }
}

fn list(family: Option<&str>) -> Result<(), String> {
    let suite = lazylocks_suite::all();
    let mut counts: HashMap<&str, usize> = HashMap::new();
    println!("{:>3}  {:<28} {:<13} description", "id", "name", "family");
    for b in &suite {
        *counts.entry(b.family).or_default() += 1;
        if let Some(f) = family {
            if b.family != f {
                continue;
            }
        }
        let mut marks = String::new();
        if b.expect.may_deadlock {
            marks.push_str(" [deadlocks]");
        }
        if b.expect.may_fail_assert {
            marks.push_str(" [asserts]");
        }
        println!(
            "{:>3}  {:<28} {:<13} {}{}",
            b.id, b.name, b.family, b.description, marks
        );
    }
    if family.is_none() {
        let mut fams: Vec<_> = counts.into_iter().collect();
        fams.sort();
        let summary: Vec<String> = fams.iter().map(|(f, n)| format!("{f} ({n})")).collect();
        println!("\n{} benchmarks: {}", suite.len(), summary.join(", "));
    }
    Ok(())
}

fn strategies() -> Result<(), String> {
    let registry = StrategyRegistry::default();
    println!("registered strategies (spec syntax: name or name(key=value, ...)):\n");
    for (name, help) in registry.entries() {
        println!("  {name:<12} {help}");
    }
    println!("\naliases:\n");
    for (alias, target) in registry.alias_table() {
        println!("  {alias:<16} = {target}");
    }
    Ok(())
}

fn print_outcome(program: &str, outcome: &ExploreOutcome) {
    let stats = &outcome.stats;
    println!("program     : {program}");
    println!("strategy    : {}", outcome.strategy_id);
    println!("verdict     : {}", outcome.verdict);
    println!(
        "schedules   : {}{}{}",
        stats.schedules,
        if stats.limit_hit { "  (limit hit)" } else { "" },
        if stats.cancelled { "  (cancelled)" } else { "" }
    );
    println!("events      : {}", stats.events);
    println!("max depth   : {}", stats.max_depth);
    println!("#states     : {}", stats.unique_states);
    println!("#lazy HBRs  : {}", stats.unique_lazy_hbrs);
    println!("#HBRs       : {}", stats.unique_hbrs);
    println!("deadlocks   : {}", stats.deadlocks);
    println!("faulty runs : {}", stats.faulted_schedules);
    if stats.cache_prunes > 0 {
        println!("cache prunes: {}", stats.cache_prunes);
    }
    if stats.sleep_prunes > 0 {
        println!("sleep prunes: {}", stats.sleep_prunes);
    }
    if stats.bound_prunes > 0 {
        println!("bound prunes: {}", stats.bound_prunes);
    }
    if stats.truncated_runs > 0 {
        println!("truncated   : {}", stats.truncated_runs);
    }
    println!("wall time   : {:?}", stats.wall_time);
    if let Err(violation) = stats.check_inequality() {
        println!("WARNING     : counting inequality violated: {violation}");
    }
    for (i, bug) in outcome.bugs.iter().enumerate() {
        println!("bug #{}     : {bug}", i + 1);
        let schedule: Vec<String> = bug.schedule.iter().map(|t| t.to_string()).collect();
        println!("replay with : {}", schedule.join(","));
    }
}

fn compare(program: &Program, limit: usize) -> Result<(), String> {
    let registry = StrategyRegistry::default();
    let specs = [
        "dfs",
        "dpor",
        "dpor(sleep=true)",
        "caching",
        "caching(mode=lazy)",
        "lazy-dpor",
        "random",
        "bounded",
    ];
    let session = ExploreSession::new(program).with_config(ExploreConfig::with_limit(limit));
    println!("program: {} (limit {limit})", program.name());
    println!(
        "{:<14} {:>10} {:>8} {:>10} {:>10} {:>8} {:>6}",
        "strategy", "schedules", "#states", "#lazyHBRs", "#HBRs", "bugs", "limit"
    );
    for spec in specs {
        let outcome = session
            .run_with(&registry, spec)
            .map_err(|e| e.to_string())?;
        let stats = &outcome.stats;
        println!(
            "{:<14} {:>10} {:>8} {:>10} {:>10} {:>8} {:>6}",
            outcome.strategy_id,
            stats.schedules,
            stats.unique_states,
            stats.unique_lazy_hbrs,
            stats.unique_hbrs,
            stats.deadlocks + stats.faulted_schedules,
            if stats.limit_hit { "*" } else { "" }
        );
    }
    Ok(())
}

fn races(program: &Program, walks: usize, seed: u64) -> Result<(), String> {
    use lazylocks::rng::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let mut all_races = std::collections::BTreeMap::new();
    for _ in 0..walks {
        let result = run_with_scheduler(program, |exec| {
            let enabled = exec.enabled_threads();
            if enabled.is_empty() {
                None
            } else {
                Some(enabled[rng.gen_range(enabled.len())])
            }
        })
        .map_err(|pos| format!("internal scheduling error at step {pos}"))?;
        for race in detect_races(program, &result.trace) {
            let key = format!("{race}");
            all_races.entry(key).or_insert(race);
        }
    }
    if all_races.is_empty() {
        println!(
            "no data races observed across {walks} random walks of {}",
            program.name()
        );
    } else {
        println!(
            "{} distinct data race(s) in {} across {walks} random walks:",
            all_races.len(),
            program.name()
        );
        for race in all_races.values() {
            println!("  {race}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_by_name_id_and_missing() {
        assert!(resolve(&Target::Bench("peterson".into())).is_ok());
        assert!(resolve(&Target::Id(1)).is_ok());
        assert!(resolve(&Target::Bench("ghost".into())).is_err());
        assert!(resolve(&Target::Id(0)).is_err());
        assert!(resolve(&Target::File("/no/such/file.llk".into())).is_err());
    }

    #[test]
    fn resolve_parses_llk_files() {
        let dir = std::env::temp_dir().join("lazylocks-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.llk");
        std::fs::write(
            &path,
            "program tiny\nvar x = 0\nthread T {\n store x = 1\n}\n",
        )
        .unwrap();
        let p = resolve(&Target::File(path.to_string_lossy().into_owned())).unwrap();
        assert_eq!(p.name(), "tiny");
        assert_eq!(p.thread_count(), 1);
    }

    #[test]
    fn commands_execute_end_to_end() {
        run(Command::List {
            family: Some("paper".into()),
        })
        .unwrap();
        run(Command::Strategies).unwrap();
        run(Command::Show {
            target: Target::Id(1),
        })
        .unwrap();
        run(Command::Run {
            target: Target::Bench("paper-figure1".into()),
            strategy: "dpor(sleep=true)".into(),
            limit: 1000,
            preemptions: None,
            stop_on_bug: false,
            seed: 1,
            deadline_ms: None,
            progress: 0,
        })
        .unwrap();
        run(Command::Races {
            target: Target::Bench("store-buffer".into()),
            walks: 20,
            seed: 3,
        })
        .unwrap();
    }

    #[test]
    fn run_rejects_unknown_specs_at_execution_too() {
        let err = run(Command::Run {
            target: Target::Id(1),
            strategy: "no-such-strategy".into(),
            limit: 10,
            preemptions: None,
            stop_on_bug: false,
            seed: 1,
            deadline_ms: None,
            progress: 0,
        })
        .unwrap_err();
        assert!(err.contains("unknown strategy"));
    }

    #[test]
    fn run_with_deadline_reports_cancellation() {
        // A zero deadline cancels even the first schedule batch; the
        // command must still succeed and print a cancelled outcome.
        run(Command::Run {
            target: Target::Bench("paper-figure1".into()),
            strategy: "dfs".into(),
            limit: 1_000_000,
            preemptions: None,
            stop_on_bug: false,
            seed: 1,
            deadline_ms: Some(0),
            progress: 0,
        })
        .unwrap();
    }

    #[test]
    fn compare_runs_all_strategies() {
        let p = lazylocks_suite::by_name("paper-figure1").unwrap().program;
        compare(&p, 200).unwrap();
    }
}
