//! Command implementations.

use crate::args::{ClientAction, Command, CorpusAction, Target, USAGE};
use lazylocks::obs::{EventLog, LogLevel, MetricKind, MetricSnap, MetricValue, TraceEvent};
use lazylocks::{
    detect_races, BugReport, ExploreConfig, ExploreOutcome, ExploreSession, MetricsHandle,
    MetricsSnapshot, Observer, ProfileHandle, Progress, StrategyRegistry,
};
use lazylocks_model::Program;
use lazylocks_runtime::run_with_scheduler;
use lazylocks_trace::{
    drive, load_checkpoint, outcome_json, replay_against_with, replay_embedded_with,
    CheckpointWriter, CorpusStore, DriveRequest, Json, ProfileDoc, ReplayReport, TraceArtifact,
    TraceRecorder,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List { family } => list(family.as_deref()),
        Command::Strategies => strategies(),
        Command::Serve {
            addr,
            workers,
            corpus,
            max_job_budget,
            journal,
            distributed,
            token,
            lease_ttl_ms,
            slice,
            grace_ms,
        } => lazylocks_server::serve(lazylocks_server::ServerConfig {
            addr,
            workers,
            corpus_dir: corpus.map(PathBuf::from),
            max_job_budget,
            limits: lazylocks_server::Limits::default(),
            journal: journal.map(PathBuf::from),
            distributed,
            token: token.or_else(env_token),
            lease_ttl_ms,
            slice,
            grace_ms,
        }),
        Command::Client {
            addr,
            action,
            retries,
            retry_ms,
            token,
        } => client(&addr, action, retries, retry_ms, token.or_else(env_token)),
        Command::Worker {
            addr,
            token,
            poll_ms,
            retries,
            retry_ms,
            max_slices,
        } => worker(
            &addr,
            token.or_else(env_token),
            poll_ms,
            retries,
            retry_ms,
            max_slices,
        ),
        Command::Show { target } => {
            let program = resolve(&target)?;
            print!("{}", program.to_source());
            Ok(())
        }
        Command::Run {
            target,
            strategy,
            limit,
            preemptions,
            stop_on_bug,
            seed,
            deadline_ms,
            progress,
            minimize,
            save_traces,
            json,
            metrics,
            metrics_json,
            profile,
            log_level,
            checkpoint_dir,
            checkpoint_every,
            resume,
        } => {
            let program = resolve(&target)?;
            let mut config = ExploreConfig::with_limit(limit).seeded(seed);
            config.preemption_bound = preemptions;
            config.stop_on_bug = stop_on_bug;
            // Either metrics sink turns recording on; both consume the
            // same snapshot afterwards.
            let handle = if metrics || metrics_json.is_some() {
                MetricsHandle::enabled()
            } else {
                MetricsHandle::disabled()
            };
            config = config.with_metrics(handle.clone());
            let profiler = if profile.is_some() {
                ProfileHandle::enabled()
            } else {
                ProfileHandle::disabled()
            };
            config = config.with_profile(profiler.clone());
            let checkpointer = match &checkpoint_dir {
                Some(dir) => {
                    if resume {
                        // Refuse mismatched checkpoints before any work:
                        // resuming under a different program, strategy
                        // or seed would silently corrupt the statistics.
                        let doc = load_checkpoint(Path::new(dir))
                            .map_err(|e| format!("cannot read checkpoint in {dir}: {e}"))?
                            .map_err(|e| format!("invalid checkpoint in {dir}: {e}"))?;
                        doc.check_matches(&program, &strategy, seed)
                            .map_err(|e| format!("cannot resume from {dir}: {e}"))?;
                        config = config.resuming_from(Arc::new(doc.state));
                    }
                    config = config.checkpointing_every(checkpoint_every);
                    let writer = CheckpointWriter::new(dir, &program, &strategy, seed)
                        .map_err(|e| format!("cannot open checkpoint directory {dir}: {e}"))?
                        .with_metrics(&handle);
                    Some(Arc::new(writer))
                }
                None => None,
            };

            let mut request = DriveRequest::new(&program, &strategy)
                .with_config(config)
                .progress_every(progress)
                .minimizing(minimize);
            if let Some(level) = log_level {
                // Structured event lines on stderr replace the plain-text
                // progress prints.
                request = request.observe(Arc::new(JsonEventProgress {
                    log: EventLog::new(level),
                }));
            } else if progress > 0 && !json {
                request = request.observe(Arc::new(PrintProgress));
            }
            if let Some(writer) = checkpointer {
                request = request.observe(writer);
            }
            if let Some(ms) = deadline_ms {
                request = request.deadline(Duration::from_millis(ms));
            }
            if let Some(dir) = &save_traces {
                let store = CorpusStore::open(dir)
                    .map_err(|e| format!("cannot open trace directory {dir}: {e}"))?;
                request = request.saving_into(store);
            }
            // Saved artifacts are minimised per --minimize, which also
            // minimises the schedules reported below (the driver reuses
            // the recorder's already-minimised reports when saving).
            let result = drive(request).map_err(|e| e.to_string())?;
            let traces = result.trace_paths();
            if json {
                println!(
                    "{}",
                    outcome_json(
                        program.name(),
                        &strategy,
                        &result.outcome,
                        &result.bugs,
                        minimize,
                        &traces
                    )
                    .pretty()
                );
            } else {
                print_outcome(program.name(), &result.outcome, &result.bugs, minimize);
                for path in &traces {
                    println!("trace saved  : {}", path.display());
                }
            }
            for e in &result.trace_errors {
                eprintln!("warning: {e}");
            }
            if let Some(level) = log_level {
                let log = EventLog::new(level);
                log.emit(
                    &TraceEvent::new(LogLevel::Info, "run_complete")
                        .field("program", program.name())
                        .field("verdict", result.outcome.verdict.to_string())
                        .field("schedules", result.outcome.stats.schedules as u64)
                        .field("bugs", result.bugs.len()),
                );
            }
            if let Some(snapshot) = handle.snapshot() {
                if metrics {
                    eprint!("{}", snapshot.render_table());
                }
                if let Some(path) = &metrics_json {
                    std::fs::write(path, snapshot.to_json_string())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                }
            }
            if let (Some(path), Some(snapshot)) = (&profile, profiler.snapshot()) {
                // Scrubbed so two runs of the same exploration produce
                // byte-identical documents (the determinism contract).
                let doc = ProfileDoc::new(&program, &strategy, &snapshot.scrubbed());
                std::fs::write(path, doc.to_json_string())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("profile saved: {path}");
            }
            Ok(())
        }
        Command::Replay {
            path,
            target,
            json,
            metrics,
            metrics_json,
        } => replay(
            &path,
            target.as_ref(),
            json,
            metrics,
            metrics_json.as_deref(),
        ),
        Command::Corpus { action, dir, json } => corpus(action, dir.as_deref(), json),
        Command::Fuzz {
            profile,
            cases,
            seed,
            budget,
            size,
            save,
            json,
            metrics,
            metrics_json,
        } => fuzz(
            profile,
            cases,
            seed,
            budget,
            size,
            save.as_deref(),
            json,
            metrics,
            metrics_json.as_deref(),
        ),
        Command::Profile {
            doc,
            target,
            strategy,
            limit,
            json,
        } => profile_cmd(
            doc.as_deref(),
            target.as_ref(),
            strategy.as_deref(),
            limit,
            json,
        ),
        Command::Compare { target, limit } => compare(&resolve(&target)?, limit),
        Command::Races {
            target,
            walks,
            seed,
        } => races(&resolve(&target)?, walks, seed),
    }
}

/// Progress observer for `run --progress N`: one status line per tick.
struct PrintProgress;

impl Observer for PrintProgress {
    fn on_progress(&self, p: &Progress) {
        eprintln!(
            "... {} schedules, {} events, {} states, {} bugs",
            p.schedules, p.events, p.unique_states, p.bugs
        );
    }
}

/// Progress observer for `run --log-level LEVEL`: structured JSON event
/// lines on stderr instead of the ad-hoc prints.
struct JsonEventProgress {
    log: EventLog,
}

impl Observer for JsonEventProgress {
    fn on_progress(&self, p: &Progress) {
        self.log.emit(
            &TraceEvent::new(LogLevel::Info, "progress")
                .field("schedules", p.schedules as u64)
                .field("events", p.events)
                .field("unique_states", p.unique_states as u64)
                .field("bugs", p.bugs as u64),
        );
    }

    fn on_bug(&self, bug: &BugReport) {
        self.log.emit(
            &TraceEvent::new(LogLevel::Warn, "bug")
                .field("kind", bug.to_string())
                .field("trace_len", bug.trace_len as u64)
                .field("schedule_len", bug.schedule.len() as u64),
        );
    }
}

fn resolve(target: &Target) -> Result<Program, String> {
    match target {
        Target::Bench(name) => lazylocks_suite::by_name(name)
            .map(|b| b.program)
            .ok_or_else(|| format!("no benchmark named {name:?}; try `lazylocks list`")),
        Target::Id(id) => lazylocks_suite::by_id(*id)
            .map(|b| b.program)
            .ok_or_else(|| format!("no benchmark with id {id}; the corpus has 1..=79")),
        Target::File(path) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Program::parse(&source).map_err(|e| format!("cannot parse {path}: {e}"))
        }
    }
}

fn list(family: Option<&str>) -> Result<(), String> {
    let suite = lazylocks_suite::all();
    let mut counts: HashMap<&str, usize> = HashMap::new();
    println!("{:>3}  {:<28} {:<13} description", "id", "name", "family");
    for b in &suite {
        *counts.entry(b.family).or_default() += 1;
        if let Some(f) = family {
            if b.family != f {
                continue;
            }
        }
        let mut marks = String::new();
        if b.expect.may_deadlock {
            marks.push_str(" [deadlocks]");
        }
        if b.expect.may_fail_assert {
            marks.push_str(" [asserts]");
        }
        println!(
            "{:>3}  {:<28} {:<13} {}{}",
            b.id, b.name, b.family, b.description, marks
        );
    }
    if family.is_none() {
        let mut fams: Vec<_> = counts.into_iter().collect();
        fams.sort();
        let summary: Vec<String> = fams.iter().map(|(f, n)| format!("{f} ({n})")).collect();
        println!("\n{} benchmarks: {}", suite.len(), summary.join(", "));
    }
    Ok(())
}

fn strategies() -> Result<(), String> {
    let registry = StrategyRegistry::default();
    println!("registered strategies (spec syntax: name or name(key=value, ...)):\n");
    for (name, help) in registry.entries() {
        println!("  {name:<12} {help}");
    }
    println!("\naliases:\n");
    for (alias, target) in registry.alias_table() {
        println!("  {alias:<16} = {target}");
    }
    Ok(())
}

/// The `client` subcommand: a thin veneer over
/// [`lazylocks_server::Client`]. Every action prints the daemon's JSON
/// response; `submit --wait` additionally polls the job to completion
/// and fails unless it ended `done`.
fn client(
    addr: &str,
    action: ClientAction,
    retries: u32,
    retry_ms: u64,
    token: Option<String>,
) -> Result<(), String> {
    let client = lazylocks_server::Client::new(addr)
        .with_retries(retries, Duration::from_millis(retry_ms))
        .with_token(token);
    match action {
        ClientAction::Submit {
            target,
            strategy,
            limit,
            seed,
            preemptions,
            stop_on_bug,
            minimize,
            deadline_ms,
            priority,
            wait,
        } => {
            // Programs travel as source text: the daemon re-parses and
            // validates, so benchmarks and files submit identically.
            let program = resolve(&target)?;
            let job = Json::obj([
                ("program", Json::Str(program.to_source())),
                ("spec", Json::Str(strategy)),
                ("limit", Json::Int(limit as i128)),
                ("seed", Json::Int(i128::from(seed))),
                (
                    "preemptions",
                    preemptions
                        .map(|p| Json::Int(i128::from(p)))
                        .unwrap_or(Json::Null),
                ),
                ("stop_on_bug", Json::Bool(stop_on_bug)),
                ("minimize", Json::Bool(minimize)),
                (
                    "deadline_ms",
                    deadline_ms
                        .map(|ms| Json::Int(i128::from(ms)))
                        .unwrap_or(Json::Null),
                ),
                ("priority", Json::Int(i128::from(priority))),
            ]);
            let id = client.submit(&job)?;
            if !wait {
                println!(
                    "{}",
                    Json::obj([
                        ("id", Json::Int(id as i128)),
                        ("state", Json::Str("queued".to_string())),
                    ])
                    .pretty()
                );
                return Ok(());
            }
            let detail = client.wait(id, Duration::from_millis(50))?;
            println!("{}", detail.pretty());
            match detail.get("state").and_then(Json::as_str) {
                Some("done") => Ok(()),
                Some(state) => Err(format!("job {id} ended {state}")),
                None => Err(format!("job {id} detail carried no state")),
            }
        }
        ClientAction::Status { id } => {
            let (status, body) = match id {
                Some(id) => client.job(id)?,
                None => client.jobs()?,
            };
            println!("{}", body.pretty());
            expect_ok(status, &body)
        }
        ClientAction::Cancel { id } => {
            let (status, body) = client.cancel(id)?;
            println!("{}", body.pretty());
            expect_ok(status, &body)
        }
        ClientAction::Events { id, since } => {
            let (status, body) = client.events(id, since)?;
            println!("{}", body.pretty());
            expect_ok(status, &body)
        }
        ClientAction::Metrics => {
            let (status, body) = client.metrics_json()?;
            expect_ok(status, &body)?;
            // Daemon-level gauges first, then the merged exploration
            // metrics through the same table renderer `run --metrics`
            // uses locally.
            if let Some(Json::Obj(pairs)) = body.get("server") {
                for (name, value) in pairs {
                    match value {
                        Json::Int(v) => println!("{name:<42} {v}"),
                        Json::Obj(states) => {
                            for (state, n) in states {
                                let label = format!("{name}{{state={state}}}");
                                println!("{label:<42} {}", n.as_i64().unwrap_or_default());
                            }
                        }
                        _ => {}
                    }
                }
            }
            let snapshot = metrics_snapshot_from_json(&body)?;
            print!("{}", snapshot.render_table());
            Ok(())
        }
        ClientAction::Shutdown => {
            let (status, body) = client.shutdown()?;
            println!("{}", body.pretty());
            expect_ok(status, &body)
        }
    }
}

/// The shared-secret fallback: `--token` beats `LAZYLOCKS_TOKEN`.
fn env_token() -> Option<String> {
    std::env::var("LAZYLOCKS_TOKEN")
        .ok()
        .filter(|t| !t.is_empty())
}

/// The `worker` subcommand: claim a subtree lease from a
/// `serve --distributed` coordinator, explore its slice with the
/// sequential engine, upload the result, repeat. A heartbeat thread
/// renews the lease at a third of its TTL so a healthy worker is never
/// presumed dead mid-slice; conversely, killing this process (even
/// `kill -9`) simply stops the renewals and the coordinator reassigns
/// the lease. Exits cleanly once the coordinator stops answering.
fn worker(
    addr: &str,
    token: Option<String>,
    poll_ms: u64,
    retries: u32,
    retry_ms: u64,
    max_slices: Option<u64>,
) -> Result<(), String> {
    let client = Arc::new(
        lazylocks_server::Client::new(addr)
            .with_retries(retries, Duration::from_millis(retry_ms))
            .with_token(token)
            // Lease grants embed checkpoint frontiers; match the
            // coordinator's widened distributed-mode wire cap.
            .with_body_cap(lazylocks_server::DISTRIBUTED_BODY_CAP),
    );
    let name = format!("worker-{}", std::process::id());
    println!("lazylocks-worker {name} polling {addr}");
    let mut slices = 0u64;
    loop {
        if max_slices.is_some_and(|max| slices >= max) {
            println!("lazylocks-worker {name} done after {slices} slice(s)");
            return Ok(());
        }
        let grant = match client.claim_lease(&name) {
            Ok(grant) => grant,
            Err(e) => {
                // The coordinator drained or died; both are normal ends
                // for a worker (a restarted coordinator re-runs its jobs
                // deterministically without us).
                println!("lazylocks-worker {name} exiting: {e}");
                return Ok(());
            }
        };
        let Some(grant) = grant else {
            std::thread::sleep(Duration::from_millis(poll_ms));
            continue;
        };
        let field = |key: &str| grant.get(key).and_then(Json::as_u64).unwrap_or(0);
        let (lease, epoch, job, ttl_ms) = (
            field("lease"),
            field("epoch"),
            field("job"),
            field("ttl_ms"),
        );

        // Heartbeat at ttl/3 while the slice runs. A failed renewal
        // means we were fenced out (reassigned after a stall); the slice
        // still finishes, and the late upload is rejected by epoch —
        // that is the designed zombie path, not an error.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let heartbeat = {
            let client = client.clone();
            let stop = stop.clone();
            let name = name.clone();
            let beat = Duration::from_millis((ttl_ms / 3).max(10));
            std::thread::spawn(move || {
                let mut last = std::time::Instant::now();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(10));
                    if last.elapsed() < beat {
                        continue;
                    }
                    last = std::time::Instant::now();
                    if client.renew_lease(lease, &name, epoch).is_err() {
                        return;
                    }
                }
            })
        };
        let outcome = lazylocks_server::run_slice(&grant);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = heartbeat.join();

        match outcome {
            Ok(mut result) => {
                if let Json::Obj(pairs) = &mut result {
                    pairs.push(("epoch".to_string(), Json::Int(epoch as i128)));
                    pairs.push(("worker".to_string(), Json::Str(name.clone())));
                }
                let schedules = result
                    .get("stats")
                    .and_then(|s| s.get("schedules"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                match client.lease_result(lease, &result) {
                    Ok((200, _)) => println!(
                        "lazylocks-worker {name} job {job} lease {lease} epoch {epoch}: \
                         {schedules} schedules"
                    ),
                    Ok((409, body)) => println!(
                        "lazylocks-worker {name} lease {lease} superseded (409): {}",
                        body.get("error").and_then(Json::as_str).unwrap_or("?")
                    ),
                    Ok((status, body)) => {
                        // The slice ran but its result is undeliverable
                        // (e.g. the frontier outgrew the wire cap).
                        // Report a small failure document so the
                        // coordinator falls back to a whole-job lease
                        // instead of this lease bouncing between workers
                        // forever.
                        let reason = format!(
                            "result upload refused ({status}): {}",
                            body.get("error").and_then(Json::as_str).unwrap_or("?")
                        );
                        eprintln!("lazylocks-worker {name} lease {lease}: {reason}");
                        let failure = Json::Obj(vec![
                            ("epoch".to_string(), Json::Int(epoch as i128)),
                            ("worker".to_string(), Json::Str(name.clone())),
                            ("failed".to_string(), Json::Str(reason)),
                        ]);
                        if let Err(e) = client.lease_result(lease, &failure) {
                            println!("lazylocks-worker {name} exiting mid-upload: {e}");
                            return Ok(());
                        }
                    }
                    Err(e) => {
                        println!("lazylocks-worker {name} exiting mid-upload: {e}");
                        return Ok(());
                    }
                }
            }
            // A slice that cannot run (bad checkpoint, bad program) is a
            // coordinator-side bug; leave the lease to expire so the
            // coordinator's own fallback surfaces the error.
            Err(e) => eprintln!("lazylocks-worker {name} lease {lease} failed: {e}"),
        }
        slices += 1;
    }
}

/// Rebuilds a [`MetricsSnapshot`] from the daemon's
/// `GET /metrics?format=json` body, so the client renders the genuine
/// table rather than imitating it. Help text and time-scrub flags are
/// not part of the wire format; the table renderer uses neither.
fn metrics_snapshot_from_json(body: &Json) -> Result<MetricsSnapshot, String> {
    let value_of = |v: &Json| -> Result<MetricValue, String> {
        if let Some(value) = v.get("value").and_then(Json::as_u64) {
            return Ok(MetricValue::Scalar(value));
        }
        let counts = v
            .get("counts")
            .and_then(Json::as_arr)
            .ok_or("metric entry has neither 'value' nor 'counts'")?
            .iter()
            .map(|c| c.as_u64().ok_or("non-integer histogram count"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricValue::Histogram {
            counts,
            count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
            sum: v.get("sum").and_then(Json::as_u64).unwrap_or(0),
        })
    };
    let metrics = body
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("daemon metrics body has no 'metrics' array")?
        .iter()
        .map(|m| {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric entry has no name")?
                .to_string();
            let kind = match m.get("kind").and_then(Json::as_str) {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                other => return Err(format!("unknown metric kind {other:?}")),
            };
            let buckets = match m.get("buckets").and_then(Json::as_arr) {
                Some(arr) => arr
                    .iter()
                    .map(|b| b.as_u64().ok_or("non-integer bucket bound".to_string()))
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            };
            let per_worker = match m.get("per_worker").and_then(Json::as_arr) {
                Some(arr) => arr
                    .iter()
                    .map(|w| {
                        let worker = w
                            .get("worker")
                            .and_then(Json::as_u64)
                            .ok_or("per_worker entry has no worker id")?
                            as u32;
                        Ok::<_, String>((worker, value_of(w)?))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            };
            Ok::<_, String>(MetricSnap {
                name,
                help: String::new(),
                kind,
                buckets,
                time_based: false,
                total: value_of(m)?,
                per_worker,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MetricsSnapshot { metrics })
}

fn expect_ok(status: u16, body: &Json) -> Result<(), String> {
    if (200..300).contains(&status) {
        Ok(())
    } else {
        Err(format!(
            "daemon answered {status}: {}",
            body.get("error").and_then(Json::as_str).unwrap_or("?")
        ))
    }
}

fn print_outcome(program: &str, outcome: &ExploreOutcome, bugs: &[BugReport], minimized: bool) {
    let stats = &outcome.stats;
    println!("program     : {program}");
    println!("strategy    : {}", outcome.strategy_id);
    println!("verdict     : {}", outcome.verdict);
    println!(
        "schedules   : {}{}{}",
        stats.schedules,
        if stats.limit_hit { "  (limit hit)" } else { "" },
        if stats.cancelled { "  (cancelled)" } else { "" }
    );
    println!("events      : {}", stats.events);
    println!("max depth   : {}", stats.max_depth);
    println!("#states     : {}", stats.unique_states);
    println!("#lazy HBRs  : {}", stats.unique_lazy_hbrs);
    println!("#HBRs       : {}", stats.unique_hbrs);
    println!("deadlocks   : {}", stats.deadlocks);
    println!("faulty runs : {}", stats.faulted_schedules);
    if stats.cache_prunes > 0 {
        println!("cache prunes: {}", stats.cache_prunes);
    }
    if stats.sleep_prunes > 0 {
        println!("sleep prunes: {}", stats.sleep_prunes);
    }
    if stats.bound_prunes > 0 {
        println!("bound prunes: {}", stats.bound_prunes);
    }
    if stats.truncated_runs > 0 {
        println!("truncated   : {}", stats.truncated_runs);
    }
    println!("wall time   : {:?}", stats.wall_time);
    if let Err(violation) = stats.check_inequality() {
        println!("WARNING     : counting inequality violated: {violation}");
    }
    for (i, bug) in bugs.iter().enumerate() {
        let tag = if minimized { " (minimized)" } else { "" };
        println!("bug #{}     : {bug}{tag}", i + 1);
        let schedule: Vec<String> = bug.schedule.iter().map(|t| t.to_string()).collect();
        println!("replay with : {}", schedule.join(","));
    }
}

/// `lazylocks replay <file|dir>`: replay one artifact or every artifact in
/// a directory, classify each, and fail unless everything reproduces.
fn replay(
    path: &str,
    target: Option<&Target>,
    json: bool,
    metrics: bool,
    metrics_json: Option<&str>,
) -> Result<(), String> {
    let handle = if metrics || metrics_json.is_some() {
        MetricsHandle::enabled()
    } else {
        MetricsHandle::disabled()
    };
    let path = Path::new(path);
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no artifacts (*.json) in {}", path.display()));
        }
        files
    } else {
        vec![path.to_path_buf()]
    };
    let target_program = target.map(resolve).transpose()?;

    let mut failures = 0usize;
    let mut reports: Vec<(PathBuf, Result<ReplayReport, String>)> = Vec::new();
    for file in files {
        let report = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))
            .and_then(|text| TraceArtifact::parse(&text).map_err(|e| e.to_string()))
            .and_then(|artifact| match &target_program {
                Some(program) => Ok(replay_against_with(&artifact, program, &handle)),
                None => replay_embedded_with(&artifact, &handle).map_err(|e| e.to_string()),
            });
        if !matches!(&report, Ok(r) if r.reproduced()) {
            failures += 1;
        }
        reports.push((file, report));
    }

    if json {
        let items = reports
            .iter()
            .map(|(file, report)| {
                let mut pairs = vec![("file", Json::Str(file.display().to_string()))];
                match report {
                    Ok(r) => pairs.extend([
                        ("verdict", Json::Str(r.verdict.to_string())),
                        ("expected", Json::Str(r.expected.clone())),
                        ("observed", Json::Str(r.observed.clone())),
                        ("details", Json::Str(r.details.clone())),
                    ]),
                    Err(e) => pairs.extend([
                        ("verdict", Json::Str("error".to_string())),
                        ("details", Json::Str(e.clone())),
                    ]),
                }
                Json::obj(pairs)
            })
            .collect();
        println!("{}", Json::Arr(items).pretty());
    } else {
        for (file, report) in &reports {
            match report {
                Ok(r) => println!("{}: {r}", file.display()),
                Err(e) => println!("{}: error: {e}", file.display()),
            }
        }
        println!(
            "{} artifact(s): {} reproduced, {failures} failed",
            reports.len(),
            reports.len() - failures
        );
    }
    if let Some(snapshot) = handle.snapshot() {
        if metrics {
            eprint!("{}", snapshot.render_table());
        }
        if let Some(path) = metrics_json {
            std::fs::write(path, snapshot.to_json_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} artifact(s) did not reproduce",
            reports.len()
        ));
    }
    Ok(())
}

/// `lazylocks corpus {list,prune,seed}`.
fn corpus(action: CorpusAction, dir: Option<&str>, json: bool) -> Result<(), String> {
    let root = dir
        .map(PathBuf::from)
        .unwrap_or_else(CorpusStore::default_root);
    let store = CorpusStore::open(&root)
        .map_err(|e| format!("cannot open corpus {}: {e}", root.display()))?;
    match action {
        CorpusAction::List => {
            let entries = store.list().map_err(|e| e.to_string())?;
            if json {
                let items = entries
                    .iter()
                    .map(|entry| {
                        let mut pairs = vec![("file", Json::Str(entry.path.display().to_string()))];
                        match &entry.artifact {
                            Ok(a) => pairs.extend([
                                ("program", Json::Str(a.program_name.clone())),
                                ("fingerprint", Json::u128_hex(a.program_fingerprint)),
                                ("outcome", Json::Str(a.outcome_label())),
                                ("strategy", Json::Str(a.strategy_spec.clone())),
                                ("schedule_len", Json::Int(a.schedule.len() as i128)),
                                ("minimized", Json::Bool(a.minimized)),
                            ]),
                            Err(e) => pairs.push(("error", Json::Str(e.to_string()))),
                        }
                        Json::obj(pairs)
                    })
                    .collect();
                println!("{}", Json::Arr(items).pretty());
                return Ok(());
            }
            println!("{:<44} {:<24} {:>8} outcome", "file", "program", "schedule");
            for entry in &entries {
                let file = entry
                    .path
                    .file_name()
                    .map(|f| f.to_string_lossy().into_owned())
                    .unwrap_or_default();
                match &entry.artifact {
                    Ok(a) => println!(
                        "{file:<44} {:<24} {:>8} {}{}",
                        a.program_name,
                        a.schedule.len(),
                        a.outcome_label(),
                        if a.minimized { " [minimized]" } else { "" }
                    ),
                    Err(e) => println!("{file:<44} <undecodable: {e}>"),
                }
            }
            println!(
                "\n{} artifact(s) in {}",
                entries.len(),
                store.root().display()
            );
            Ok(())
        }
        CorpusAction::Prune => {
            let report = store.prune().map_err(|e| e.to_string())?;
            if json {
                let removed = report
                    .removed
                    .iter()
                    .map(|(path, reason)| {
                        Json::obj([
                            ("file", Json::Str(path.display().to_string())),
                            ("reason", Json::Str(reason.clone())),
                        ])
                    })
                    .collect();
                println!(
                    "{}",
                    Json::obj([
                        ("kept", Json::Int(report.kept as i128)),
                        ("removed", Json::Arr(removed)),
                    ])
                    .pretty()
                );
                return Ok(());
            }
            for (path, reason) in &report.removed {
                println!("removed {}: {reason}", path.display());
            }
            println!("kept {}, removed {}", report.kept, report.removed.len());
            Ok(())
        }
        CorpusAction::Seed { limit } => corpus_seed(&store, limit, json),
    }
}

/// Explores every bug-bearing benchmark (per its [`Expectations`]) into
/// the corpus, one minimised artifact per distinct bug.
///
/// [`Expectations`]: lazylocks_suite::Expectations
fn corpus_seed(store: &CorpusStore, limit: usize, json: bool) -> Result<(), String> {
    const SEED_SPEC: &str = "dpor(sleep=true)";
    let mut items = Vec::new();
    let mut missing = 0usize;
    for bench in lazylocks_suite::buggy() {
        let config = ExploreConfig::with_limit(limit).stopping_on_bug();
        let recorder = Arc::new(TraceRecorder::new(
            store.clone(),
            &bench.program,
            SEED_SPEC,
            config.seed,
        ));
        let outcome = ExploreSession::new(&bench.program)
            .with_config(config)
            .observe_arc(recorder.clone())
            .run_spec(SEED_SPEC)
            .map_err(|e| e.to_string())?;
        let (finalized, errors) = recorder.finalize(&outcome.stats);
        for e in &errors {
            eprintln!("warning: {e}");
        }
        if finalized.is_empty() {
            missing += 1;
        }
        let paths: Vec<PathBuf> = finalized.into_iter().map(|f| f.path).collect();
        items.push((bench.name.clone(), outcome.stats.schedules, paths));
    }
    if json {
        let arr = items
            .iter()
            .map(|(name, schedules, paths)| {
                Json::obj([
                    ("bench", Json::Str(name.clone())),
                    ("schedules", Json::Int(*schedules as i128)),
                    (
                        "traces",
                        Json::Arr(
                            paths
                                .iter()
                                .map(|p| Json::Str(p.display().to_string()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        println!("{}", Json::Arr(arr).pretty());
    } else {
        for (name, schedules, paths) in &items {
            match paths.first() {
                Some(path) => println!(
                    "{name}: bug found after {schedules} schedule(s) -> {}",
                    path.display()
                ),
                None => println!("{name}: no bug within {limit} schedules"),
            }
        }
        println!(
            "\nseeded {} benchmark(s) into {}",
            items.len() - missing,
            store.root().display()
        );
    }
    if missing > 0 {
        return Err(format!(
            "{missing} expected-buggy benchmark(s) produced no bug within {limit} schedules"
        ));
    }
    Ok(())
}

/// `lazylocks fuzz`: generate adversarial programs and differentially
/// check every registered strategy against exhaustive DFS. Deterministic
/// per seed (no wall-clock data in the output); exit status is non-zero
/// on any disagreement.
#[allow(clippy::too_many_arguments)]
fn fuzz(
    profile: Option<lazylocks_fuzz::ShapeProfile>,
    cases: usize,
    seed: u64,
    budget: usize,
    size: usize,
    save: Option<&str>,
    json: bool,
    metrics: bool,
    metrics_json: Option<&str>,
) -> Result<(), String> {
    use lazylocks::CancelToken;
    use lazylocks_fuzz::{
        default_oracle_specs, run_fuzz_with, CaseStatus, FuzzConfig, ShapeProfile,
    };

    let handle = if metrics || metrics_json.is_some() {
        MetricsHandle::enabled()
    } else {
        MetricsHandle::disabled()
    };

    let profiles = match profile {
        None => ShapeProfile::ALL.to_vec(),
        Some(profile) => vec![profile],
    };
    let store = save
        .map(|dir| CorpusStore::open(dir).map_err(|e| format!("cannot open {dir}: {e}")))
        .transpose()?;
    let config = FuzzConfig {
        profiles,
        cases,
        seed,
        budget,
        max_size: size,
        shrink: true,
    };
    let registry = StrategyRegistry::default();
    let oracle = default_oracle_specs();
    let report = run_fuzz_with(
        &config,
        &registry,
        &oracle,
        store.as_ref(),
        &CancelToken::new(),
        &handle,
        |case| {
            for repro in &case.repros {
                if let Some(e) = &repro.save_error {
                    eprintln!("warning: {e}");
                }
            }
            if json {
                return;
            }
            let outcome = match case.status {
                CaseStatus::Agreed => format!(
                    "agreed        ({} schedules, {} states)",
                    case.dfs.schedules, case.dfs.states
                ),
                CaseStatus::AgreedBuggy => format!(
                    "agreed        ({} schedules, {} states, {} deadlocking, {} faulting)",
                    case.dfs.schedules,
                    case.dfs.states,
                    case.dfs.deadlocks,
                    case.dfs.faulted_schedules
                ),
                CaseStatus::Unexhausted => {
                    format!("skipped       (ground truth exceeds budget {budget})")
                }
                CaseStatus::Disagreed => format!(
                    "DISAGREED     ({} broken promise(s))",
                    case.disagreements.len()
                ),
                CaseStatus::Cancelled => "cancelled".to_string(),
            };
            println!("{:<28} {outcome}", case.program_name);
            for d in &case.disagreements {
                println!("    {d}");
            }
            for repro in &case.repros {
                match &repro.path {
                    Some(path) => println!(
                        "    repro: {} instruction(s), schedule of {} -> {}",
                        repro.instructions,
                        repro.schedule_len,
                        path.display()
                    ),
                    None => println!(
                        "    repro: {} instruction(s), schedule of {} (not saved; use --save DIR)",
                        repro.instructions, repro.schedule_len
                    ),
                }
            }
        },
    )
    .map_err(|e| e.to_string())?;

    let summary = [
        ("agreed", report.count(CaseStatus::Agreed)),
        ("agreed_buggy", report.count(CaseStatus::AgreedBuggy)),
        ("unexhausted", report.count(CaseStatus::Unexhausted)),
        ("disagreed", report.count(CaseStatus::Disagreed)),
    ];
    if json {
        let cases_json: Vec<Json> = report
            .cases
            .iter()
            .map(|case| {
                Json::obj([
                    ("case", Json::Int(case.index as i128)),
                    ("profile", Json::Str(case.profile.name().to_string())),
                    ("size", Json::Int(case.size as i128)),
                    ("program", Json::Str(case.program_name.clone())),
                    ("fingerprint", Json::u128_hex(case.fingerprint)),
                    ("status", Json::Str(case.status.label().to_string())),
                    (
                        "dfs",
                        Json::obj([
                            ("schedules", Json::Int(case.dfs.schedules as i128)),
                            ("states", Json::Int(case.dfs.states as i128)),
                            ("hbrs", Json::Int(case.dfs.hbrs as i128)),
                            ("lazy_hbrs", Json::Int(case.dfs.lazy_hbrs as i128)),
                            ("deadlocks", Json::Int(case.dfs.deadlocks as i128)),
                            (
                                "faulted_schedules",
                                Json::Int(case.dfs.faulted_schedules as i128),
                            ),
                        ]),
                    ),
                    (
                        "disagreements",
                        Json::Arr(
                            case.disagreements
                                .iter()
                                .map(|d| {
                                    Json::obj([
                                        ("spec", Json::Str(d.spec.clone())),
                                        ("strategy", Json::Str(d.strategy_id.clone())),
                                        ("promised", Json::Str(d.agreement.name().to_string())),
                                        ("kind", Json::Str(d.kind.label().to_string())),
                                        ("details", Json::Str(d.kind.to_string())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "repros",
                        Json::Arr(
                            case.repros
                                .iter()
                                .map(|r| {
                                    Json::obj([
                                        ("spec", Json::Str(r.spec.clone())),
                                        ("kind", Json::Str(r.kind.clone())),
                                        ("instructions", Json::Int(r.instructions as i128)),
                                        ("schedule_len", Json::Int(r.schedule_len as i128)),
                                        (
                                            "path",
                                            match &r.path {
                                                Some(p) => Json::Str(p.display().to_string()),
                                                None => Json::Null,
                                            },
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("format", Json::Str("lazylocks-fuzz".to_string())),
            ("version", Json::Int(1)),
            ("seed", Json::Int(i128::from(seed))),
            ("budget", Json::Int(budget as i128)),
            ("cases", Json::Int(cases as i128)),
            (
                "profiles",
                Json::Arr(
                    config
                        .profiles
                        .iter()
                        .map(|p| Json::Str(p.name().to_string()))
                        .collect(),
                ),
            ),
            ("results", Json::Arr(cases_json)),
            (
                "summary",
                Json::obj(
                    summary
                        .iter()
                        .map(|(k, v)| (*k, Json::Int(*v as i128)))
                        .collect::<Vec<_>>(),
                ),
            ),
        ]);
        println!("{}", doc.pretty());
    } else {
        let line: Vec<String> = summary.iter().map(|(k, v)| format!("{v} {k}")).collect();
        println!("\n{} case(s): {}", report.cases.len(), line.join(", "));
    }
    if let Some(snapshot) = handle.snapshot() {
        if metrics {
            eprint!("{}", snapshot.render_table());
        }
        if let Some(path) = metrics_json {
            std::fs::write(path, snapshot.to_json_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    let disagreements = report.total_disagreements();
    if disagreements > 0 {
        return Err(format!(
            "{disagreements} disagreement(s) across {} case(s)",
            report.count(CaseStatus::Disagreed)
        ));
    }
    Ok(())
}

/// `lazylocks profile`: render a saved profile document, or explore a
/// target under the profiler and report per-site attribution.
///
/// With a target and no `--strategy`, both paper protagonists run —
/// `dpor(sleep=true)` and `lazy-dpor` — so the report directly compares
/// where each spends its redundant schedules.
fn profile_cmd(
    doc: Option<&str>,
    target: Option<&Target>,
    strategy: Option<&str>,
    limit: usize,
    json: bool,
) -> Result<(), String> {
    if let Some(path) = doc {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = ProfileDoc::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if json {
            println!("{}", doc.to_json().pretty());
        } else {
            print!("{}", doc.render()?);
        }
        return Ok(());
    }
    let target = target.ok_or("profile needs a DOC.json, or --bench, --id or --file")?;
    let program = resolve(target)?;
    let specs: Vec<&str> = match strategy {
        Some(spec) => vec![spec],
        None => vec!["dpor(sleep=true)", "lazy-dpor"],
    };
    let mut docs = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let profiler = ProfileHandle::enabled();
        let config = ExploreConfig::with_limit(limit).with_profile(profiler.clone());
        let session = ExploreSession::new(&program).with_config(config);
        session.run_spec(spec).map_err(|e| e.to_string())?;
        let snapshot = profiler
            .snapshot()
            .ok_or("profiler produced no snapshot")?
            .scrubbed();
        if json {
            docs.push(ProfileDoc::new(&program, spec, &snapshot).to_json());
        } else {
            if i > 0 {
                println!();
            }
            print!(
                "{}",
                lazylocks_trace::render_profile(&program, spec, &snapshot)
            );
        }
    }
    if json {
        println!("{}", Json::Arr(docs).pretty());
    }
    Ok(())
}

fn compare(program: &Program, limit: usize) -> Result<(), String> {
    let registry = StrategyRegistry::default();
    let specs = [
        "dfs",
        "dpor",
        "dpor(sleep=true)",
        "caching",
        "caching(mode=lazy)",
        "lazy-dpor",
        "random",
        "bounded",
    ];
    let session = ExploreSession::new(program).with_config(ExploreConfig::with_limit(limit));
    println!("program: {} (limit {limit})", program.name());
    println!(
        "{:<14} {:>10} {:>8} {:>10} {:>10} {:>8} {:>6}",
        "strategy", "schedules", "#states", "#lazyHBRs", "#HBRs", "bugs", "limit"
    );
    for spec in specs {
        let outcome = session
            .run_with(&registry, spec)
            .map_err(|e| e.to_string())?;
        let stats = &outcome.stats;
        println!(
            "{:<14} {:>10} {:>8} {:>10} {:>10} {:>8} {:>6}",
            outcome.strategy_id,
            stats.schedules,
            stats.unique_states,
            stats.unique_lazy_hbrs,
            stats.unique_hbrs,
            stats.deadlocks + stats.faulted_schedules,
            if stats.limit_hit { "*" } else { "" }
        );
    }
    Ok(())
}

fn races(program: &Program, walks: usize, seed: u64) -> Result<(), String> {
    use lazylocks::rng::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let mut all_races = std::collections::BTreeMap::new();
    for _ in 0..walks {
        let result = run_with_scheduler(program, |exec| {
            let enabled = exec.enabled_set();
            if enabled.is_empty() {
                None
            } else {
                enabled.nth(rng.gen_range(enabled.len()))
            }
        })
        .map_err(|pos| format!("internal scheduling error at step {pos}"))?;
        for race in detect_races(program, &result.trace) {
            let key = format!("{race}");
            all_races.entry(key).or_insert(race);
        }
    }
    if all_races.is_empty() {
        println!(
            "no data races observed across {walks} random walks of {}",
            program.name()
        );
    } else {
        println!(
            "{} distinct data race(s) in {} across {walks} random walks:",
            all_races.len(),
            program.name()
        );
        for race in all_races.values() {
            println!("  {race}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_by_name_id_and_missing() {
        assert!(resolve(&Target::Bench("peterson".into())).is_ok());
        assert!(resolve(&Target::Id(1)).is_ok());
        assert!(resolve(&Target::Bench("ghost".into())).is_err());
        assert!(resolve(&Target::Id(0)).is_err());
        assert!(resolve(&Target::File("/no/such/file.llk".into())).is_err());
    }

    #[test]
    fn resolve_parses_llk_files() {
        let dir = std::env::temp_dir().join("lazylocks-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.llk");
        std::fs::write(
            &path,
            "program tiny\nvar x = 0\nthread T {\n store x = 1\n}\n",
        )
        .unwrap();
        let p = resolve(&Target::File(path.to_string_lossy().into_owned())).unwrap();
        assert_eq!(p.name(), "tiny");
        assert_eq!(p.thread_count(), 1);
    }

    /// A `Command::Run` with every new knob off, for tests.
    fn plain_run(target: Target, strategy: &str) -> Command {
        Command::Run {
            target,
            strategy: strategy.into(),
            limit: 1000,
            preemptions: None,
            stop_on_bug: false,
            seed: 1,
            deadline_ms: None,
            progress: 0,
            minimize: false,
            save_traces: None,
            json: false,
            metrics: false,
            metrics_json: None,
            profile: None,
            log_level: None,
            checkpoint_dir: None,
            checkpoint_every: 1000,
            resume: false,
        }
    }

    #[test]
    fn commands_execute_end_to_end() {
        run(Command::List {
            family: Some("paper".into()),
        })
        .unwrap();
        run(Command::Strategies).unwrap();
        run(Command::Show {
            target: Target::Id(1),
        })
        .unwrap();
        run(plain_run(
            Target::Bench("paper-figure1".into()),
            "dpor(sleep=true)",
        ))
        .unwrap();
        run(Command::Races {
            target: Target::Bench("store-buffer".into()),
            walks: 20,
            seed: 3,
        })
        .unwrap();
    }

    #[test]
    fn run_rejects_unknown_specs_at_execution_too() {
        let err = run(plain_run(Target::Id(1), "no-such-strategy")).unwrap_err();
        assert!(err.contains("unknown strategy"));
    }

    #[test]
    fn run_with_deadline_reports_cancellation() {
        // A zero deadline cancels even the first schedule batch; the
        // command must still succeed and print a cancelled outcome.
        run(Command::Run {
            target: Target::Bench("paper-figure1".into()),
            strategy: "dfs".into(),
            limit: 1_000_000,
            preemptions: None,
            stop_on_bug: false,
            seed: 1,
            deadline_ms: Some(0),
            progress: 0,
            minimize: false,
            save_traces: None,
            json: false,
            metrics: false,
            metrics_json: None,
            profile: None,
            log_level: None,
            checkpoint_dir: None,
            checkpoint_every: 1000,
            resume: false,
        })
        .unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lazylocks-cli-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn run_saves_minimised_traces_and_replay_reproduces_them() {
        let dir = temp_dir("run-traces");
        run(Command::Run {
            target: Target::Bench("philosophers-naive-2".into()),
            strategy: "dpor(sleep=true)".into(),
            limit: 10_000,
            preemptions: None,
            stop_on_bug: true,
            seed: 1,
            deadline_ms: None,
            progress: 0,
            minimize: true,
            save_traces: Some(dir.to_string_lossy().into_owned()),
            json: false,
            metrics: false,
            metrics_json: None,
            profile: None,
            log_level: None,
            checkpoint_dir: None,
            checkpoint_every: 1000,
            resume: false,
        })
        .unwrap();
        let store = CorpusStore::open(&dir).unwrap();
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 1);
        let artifact = entries[0].artifact.as_ref().unwrap();
        assert!(artifact.minimized);
        assert_eq!(artifact.program_name, "philosophers-naive-2");

        // Replaying the directory succeeds...
        run(Command::Replay {
            path: dir.to_string_lossy().into_owned(),
            target: None,
            json: false,
            metrics: false,
            metrics_json: None,
        })
        .unwrap();
        // ...both embedded and against the (unchanged) benchmark...
        run(Command::Replay {
            path: entries[0].path.to_string_lossy().into_owned(),
            target: Some(Target::Bench("philosophers-naive-2".into())),
            json: true,
            metrics: false,
            metrics_json: None,
        })
        .unwrap();
        // ...but not against a different program.
        let err = run(Command::Replay {
            path: entries[0].path.to_string_lossy().into_owned(),
            target: Some(Target::Bench("paper-figure1".into())),
            json: false,
            metrics: false,
            metrics_json: None,
        })
        .unwrap_err();
        assert!(err.contains("did not reproduce"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_checkpoints_and_resumes_from_disk() {
        let dir = temp_dir("checkpoint");
        let cmd = |seed: u64, resume: bool| Command::Run {
            target: Target::Bench("paper-figure1".into()),
            strategy: "dpor(sleep=true)".into(),
            limit: 10_000,
            preemptions: None,
            stop_on_bug: false,
            seed,
            deadline_ms: None,
            progress: 0,
            minimize: false,
            save_traces: None,
            json: false,
            metrics: false,
            metrics_json: None,
            profile: None,
            log_level: None,
            checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
            checkpoint_every: 1,
            resume,
        };
        run(cmd(1, false)).unwrap();
        assert!(dir.join("checkpoint.json").is_file());
        // Resuming the finished run replays its prefix and ends cleanly...
        run(cmd(1, true)).unwrap();
        // ...but a different seed is refused before any exploration.
        let err = run(cmd(2, true)).unwrap_err();
        assert!(err.contains("cannot resume"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_command_runs_targets_and_renders_saved_docs() {
        // Target mode runs both paper protagonists by default.
        run(Command::Profile {
            doc: None,
            target: Some(Target::Bench("paper-figure1".into())),
            strategy: None,
            limit: 10_000,
            json: false,
        })
        .unwrap();
        // `run --profile` writes a document the subcommand re-renders,
        // in both text and JSON form.
        let dir = temp_dir("profile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prof.json");
        let mut cmd = plain_run(Target::Bench("paper-figure1".into()), "dpor(sleep=true)");
        if let Command::Run { profile, .. } = &mut cmd {
            *profile = Some(path.to_string_lossy().into_owned());
        }
        run(cmd).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = ProfileDoc::parse(&text).unwrap();
        assert_eq!(doc.program_name, "paper-figure1");
        assert!(doc.render().unwrap().contains("hot sites"));
        for json in [false, true] {
            run(Command::Profile {
                doc: Some(path.to_string_lossy().into_owned()),
                target: None,
                strategy: None,
                limit: 10_000,
                json,
            })
            .unwrap();
        }
        // A single --strategy restricts the target run.
        run(Command::Profile {
            doc: None,
            target: Some(Target::Bench("paper-figure1".into())),
            strategy: Some("dpor".into()),
            limit: 10_000,
            json: true,
        })
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_list_and_prune_commands() {
        let dir = temp_dir("corpus");
        // Seed one artifact through the run path.
        run(Command::Run {
            target: Target::Bench("accounts-fine-deadlock2".into()),
            strategy: "dpor".into(),
            limit: 10_000,
            preemptions: None,
            stop_on_bug: true,
            seed: 1,
            deadline_ms: None,
            progress: 0,
            minimize: false,
            save_traces: Some(dir.to_string_lossy().into_owned()),
            json: true,
            metrics: false,
            metrics_json: None,
            profile: None,
            log_level: None,
            checkpoint_dir: None,
            checkpoint_every: 1000,
            resume: false,
        })
        .unwrap();
        for json in [false, true] {
            run(Command::Corpus {
                action: CorpusAction::List,
                dir: Some(dir.to_string_lossy().into_owned()),
                json,
            })
            .unwrap();
        }
        run(Command::Corpus {
            action: CorpusAction::Prune,
            dir: Some(dir.to_string_lossy().into_owned()),
            json: false,
        })
        .unwrap();
        // The artifact reproduces, so prune kept it.
        assert_eq!(CorpusStore::open(&dir).unwrap().list().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_errors_on_missing_and_empty_paths() {
        assert!(run(Command::Replay {
            path: "/no/such/artifact.json".into(),
            target: None,
            json: false,
            metrics: false,
            metrics_json: None,
        })
        .is_err());
        let dir = temp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run(Command::Replay {
            path: dir.to_string_lossy().into_owned(),
            target: None,
            json: false,
            metrics: false,
            metrics_json: None,
        })
        .unwrap_err();
        assert!(err.contains("no artifacts"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_runs_all_strategies() {
        let p = lazylocks_suite::by_name("paper-figure1").unwrap().program;
        compare(&p, 200).unwrap();
    }
}
