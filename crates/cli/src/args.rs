//! Hand-rolled argument parsing (no external dependency needed for a
//! handful of flags).

use lazylocks::StrategyRegistry;

/// Usage text shown on parse errors and `help`.
pub const USAGE: &str = "\
lazylocks — systematic concurrency testing with the lazy happens-before relation

USAGE:
  lazylocks list [--family NAME]
  lazylocks strategies
  lazylocks show  --bench NAME | --id N | --file PATH
  lazylocks run   (--bench NAME | --id N | --file PATH)
                  [--strategy SPEC] [--limit N] [--preemptions K]
                  [--stop-on-bug] [--seed X] [--deadline-ms T]
                  [--progress N] [--minimize] [--save-traces DIR] [--json]
                  [--metrics] [--metrics-json FILE] [--profile FILE]
                  [--log-level LEVEL]
                  [--checkpoint-dir DIR [--checkpoint-every N] [--resume]]
  lazylocks explore ...            alias of `run`
  lazylocks profile [DOC.json | (--bench NAME | --id N | --file PATH)]
                  [--strategy SPEC] [--limit N] [--json]
  lazylocks replay PATH [--bench NAME | --id N | --file PATH] [--json]
                  [--metrics] [--metrics-json FILE]
  lazylocks corpus (list | prune | seed) [--dir DIR] [--limit N] [--json]
  lazylocks fuzz  [--profile NAME] [--cases N] [--seed X] [--budget N]
                  [--size N] [--save DIR] [--quick] [--json]
                  [--metrics] [--metrics-json FILE]
  lazylocks compare (--bench NAME | --id N | --file PATH) [--limit N]
  lazylocks races (--bench NAME | --id N | --file PATH) [--walks N] [--seed X]
  lazylocks serve [--addr HOST:PORT] [--workers N] [--corpus DIR]
                  [--max-job-budget N] [--journal FILE] [--token SECRET]
                  [--distributed [--lease-ttl-ms T] [--slice N]
                   [--grace-ms T]]
  lazylocks worker [--addr HOST:PORT] [--token SECRET] [--poll-ms T]
                  [--retries N] [--retry-ms T] [--max-slices N]
  lazylocks client (submit | status [ID] | cancel ID | events ID |
                    metrics | shutdown)
                  [--addr HOST:PORT] [--retries N] [--retry-ms T]
                  [--token SECRET] ... (see SERVER below)
  lazylocks help

STRATEGY SPECS (see `lazylocks strategies` for the full registry):
  dfs | dpor | dpor(sleep=true) | caching(mode=lazy) | lazy-dpor |
  random | parallel(workers=8) | parallel(reduction=lazy,workers=8) |
  bounded(start=0,step=1) | ...

TRACE ARTIFACTS:
  `run --save-traces DIR` persists one replayable JSON artifact per
  distinct bug (minimised by default); `replay` re-runs an artifact file
  or a whole directory and classifies each as reproduced / diverged /
  program-changed; `corpus seed` explores every bug-bearing benchmark
  into a regression corpus (default dir: .lazylocks/corpus).

OBSERVABILITY:
  `--metrics` (on run, replay and fuzz) prints a metrics summary
  (counters, histograms, phase timers) to stderr after the work;
  `--metrics-json FILE` writes the raw snapshot as JSON (`-` for stdout
  is not supported — the JSON outcome owns stdout). `--log-level
  error|warn|info|debug` switches progress reporting to structured JSON
  event lines on stderr. `client metrics` fetches a running daemon's
  GET /metrics and pretty-prints it.

PROFILING:
  `run --profile FILE` runs the exploration profiler and writes a
  versioned profile document: per-program-point attribution (races,
  backtracks, sleep blocks, cache prunes, re-executed schedules per
  instruction and per variable/mutex), schedules-per-HBR-class
  redundancy under the regular AND lazy relations (the paper's §3
  metric), and a hot-subtree/depth span table. `lazylocks profile`
  renders reports: pass a saved DOC.json, or a program target to run
  `dpor(sleep=true)` and `lazy-dpor` back to back and compare their
  redundancy profiles (--strategy overrides the pair; --json emits the
  documents instead of text). Profiles are scrubbed (wall times zeroed)
  wherever byte-identical output across runs is required.

CRASH SAFETY:
  `run --checkpoint-dir DIR` snapshots the DPOR frontier into
  DIR/checkpoint.json every N complete schedules (--checkpoint-every,
  default 1000); each write is atomic and fsynced. After a crash,
  `run --checkpoint-dir DIR --resume` (same program, strategy and seed —
  mismatches are refused) continues from the snapshot and reaches the
  same final statistics as an uninterrupted run. `serve --journal FILE`
  write-ahead-logs every job transition; a restarted daemon re-enqueues
  the jobs that never finished.

FUZZING:
  `fuzz` generates adversarial guest programs (shape profiles:
  lock-heavy, data-race-rich, deadlock-prone, branchy, wide-fan-out; or
  a single one via --profile) and differentially checks every registered
  strategy against exhaustive DFS. Disagreements are shrunk to minimal
  `.llk` repros and, with --save DIR, persisted as replayable artifacts.
  Exit status is non-zero on any disagreement. Output is deterministic
  per --seed. --quick is the bounded CI preset.

SERVER:
  `serve` runs the exploration daemon: a JSON-over-HTTP job queue with a
  bounded worker pool, per-job cancellation, pollable event logs and
  corpus persistence (--corpus DIR). `client` talks to it:
    client submit (--bench NAME | --id N | --file PATH) [--strategy SPEC]
           [--limit N] [--seed X] [--preemptions K] [--stop-on-bug]
           [--minimize] [--deadline-ms T] [--priority P] [--wait]
    client status [ID]       one job (or all jobs) as JSON
    client cancel ID         cooperative cancellation
    client events ID [--since N]   poll the job's event log
    client shutdown          drain the queue and exit the daemon
  Both default to --addr 127.0.0.1:7077. `submit --wait` polls until the
  job finishes and exits non-zero unless it completed cleanly.

DISTRIBUTED EXPLORATION:
  `serve --distributed` turns each job into a chain of epoch-fenced
  subtree leases; `lazylocks worker` processes claim a lease, resume the
  sequential engine from its frontier checkpoint for one --slice budget,
  and upload the result. A worker that crashes, hangs, or is SIGKILLed
  misses its --lease-ttl-ms heartbeat deadline and the lease is
  reassigned; late results from the zombie are rejected by epoch; with
  no live workers the coordinator explores leases in-process after
  --grace-ms, so jobs always terminate — with stats byte-identical to a
  sequential run in every case. `serve --token SECRET` (or the
  LAZYLOCKS_TOKEN env var on all three subcommands) requires
  `Authorization: Bearer SECRET` on every mutating route.
";

/// Which program to operate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A corpus benchmark by name.
    Bench(String),
    /// A corpus benchmark by 1-based id.
    Id(usize),
    /// A `.llk` text-format program on disk.
    File(String),
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    List {
        family: Option<String>,
    },
    Strategies,
    Show {
        target: Target,
    },
    Run {
        target: Target,
        /// A registry spec string, validated against the default registry
        /// at parse time.
        strategy: String,
        limit: usize,
        preemptions: Option<u32>,
        stop_on_bug: bool,
        seed: u64,
        /// Wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Progress tick cadence in schedules (0 = quiet).
        progress: usize,
        /// Minimise reported bug schedules by delta debugging.
        minimize: bool,
        /// Persist a trace artifact per distinct bug into this directory.
        save_traces: Option<String>,
        /// Emit the outcome as a JSON document on stdout.
        json: bool,
        /// Record metrics and print the summary table to stderr.
        metrics: bool,
        /// Record metrics and write the raw snapshot JSON to this file.
        metrics_json: Option<String>,
        /// Run the exploration profiler and write the (scrubbed) profile
        /// document to this file.
        profile: Option<String>,
        /// Structured JSON event logging on stderr at this level
        /// (replaces the plain-text progress lines).
        log_level: Option<lazylocks::obs::LogLevel>,
        /// Persist exploration checkpoints into this directory.
        checkpoint_dir: Option<String>,
        /// Checkpoint cadence in complete schedules (with
        /// `--checkpoint-dir`; default 1000).
        checkpoint_every: usize,
        /// Resume from the checkpoint in `--checkpoint-dir`.
        resume: bool,
    },
    Replay {
        /// An artifact file, or a directory of artifacts.
        path: String,
        /// Replay against this program instead of the embedded source.
        target: Option<Target>,
        /// Emit the reports as a JSON document on stdout.
        json: bool,
        /// Record metrics and print the summary table to stderr.
        metrics: bool,
        /// Record metrics and write the raw snapshot JSON to this file.
        metrics_json: Option<String>,
    },
    Corpus {
        action: CorpusAction,
        /// Corpus directory (default: `.lazylocks/corpus`).
        dir: Option<String>,
        /// Emit the result as a JSON document on stdout.
        json: bool,
    },
    Fuzz {
        /// A single shape profile, or `None` for all of them. Parsed
        /// (and validated) here so execution never re-interprets it.
        profile: Option<lazylocks_fuzz::ShapeProfile>,
        /// Total generated cases.
        cases: usize,
        /// Master seed (corpus and report are deterministic per seed).
        seed: u64,
        /// Schedule budget per strategy run.
        budget: usize,
        /// Largest size-dial value (cases cycle `1..=size`).
        size: usize,
        /// Persist shrunk disagreement repros into this directory.
        save: Option<String>,
        /// Emit the report as a JSON document on stdout.
        json: bool,
        /// Record metrics and print the summary table to stderr.
        metrics: bool,
        /// Record metrics and write the raw snapshot JSON to this file.
        metrics_json: Option<String>,
    },
    Profile {
        /// A saved profile document to render (mutually exclusive with
        /// a target).
        doc: Option<String>,
        /// A program to profile under `dpor(sleep=true)` and
        /// `lazy-dpor` back to back (or `--strategy` alone).
        target: Option<Target>,
        /// Profile only this registry spec instead of the default pair.
        strategy: Option<String>,
        /// Schedule budget per strategy run.
        limit: usize,
        /// Emit the profile documents as JSON on stdout instead of the
        /// text report.
        json: bool,
    },
    Compare {
        target: Target,
        limit: usize,
    },
    Races {
        target: Target,
        walks: usize,
        seed: u64,
    },
    Serve {
        /// Bind address; port 0 picks an ephemeral port (printed).
        addr: String,
        /// Job runner threads.
        workers: usize,
        /// Corpus directory for bug persistence (None disables it).
        corpus: Option<String>,
        /// Reject submissions with a larger schedule budget.
        max_job_budget: usize,
        /// Durable job journal file (None keeps the queue in memory).
        journal: Option<String>,
        /// Distributed mode: explore jobs through subtree leases claimed
        /// by external `lazylocks worker` processes.
        distributed: bool,
        /// Shared secret required on mutating routes (None = open);
        /// falls back to the LAZYLOCKS_TOKEN environment variable.
        token: Option<String>,
        /// Lease time-to-live in milliseconds (distributed mode).
        lease_ttl_ms: u64,
        /// Schedule budget per lease slice (distributed mode).
        slice: usize,
        /// Unclaimed-lease grace period in milliseconds before the
        /// coordinator explores the slice in-process (distributed mode).
        grace_ms: u64,
    },
    Client {
        addr: String,
        action: ClientAction,
        /// Extra attempts for transient failures (idempotent requests
        /// and all connect errors).
        retries: u32,
        /// First retry backoff in milliseconds (doubles per attempt).
        retry_ms: u64,
        /// Shared secret for a `serve --token` daemon; falls back to
        /// the LAZYLOCKS_TOKEN environment variable.
        token: Option<String>,
    },
    Worker {
        /// The coordinator's address.
        addr: String,
        /// Shared secret for a `serve --token` coordinator; falls back
        /// to the LAZYLOCKS_TOKEN environment variable.
        token: Option<String>,
        /// Sleep between claim attempts when no lease is available.
        poll_ms: u64,
        /// Extra attempts for transient failures on the (idempotent)
        /// lease protocol calls.
        retries: u32,
        /// First retry backoff in milliseconds (doubles per attempt).
        retry_ms: u64,
        /// Exit after this many slices (None = run until the
        /// coordinator goes away). Mostly for tests.
        max_slices: Option<u64>,
    },
    Help,
}

/// What `lazylocks client <action>` should do.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    Submit {
        target: Target,
        strategy: String,
        limit: usize,
        seed: u64,
        preemptions: Option<u32>,
        stop_on_bug: bool,
        minimize: bool,
        deadline_ms: Option<u64>,
        priority: i64,
        /// Poll until the job finishes and print its result document.
        wait: bool,
    },
    /// One job's detail, or the full job list without an id.
    Status {
        id: Option<u64>,
    },
    Cancel {
        id: u64,
    },
    Events {
        id: u64,
        since: u64,
    },
    /// Fetch the daemon's `GET /metrics` snapshot and pretty-print it.
    Metrics,
    Shutdown,
}

/// What `lazylocks corpus <action>` should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusAction {
    /// Print the corpus contents.
    List,
    /// Remove artifacts that no longer decode or reproduce.
    Prune,
    /// Explore every bug-bearing benchmark into the corpus.
    Seed {
        /// Per-benchmark schedule budget.
        limit: usize,
    },
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().map(String::as_str);
    let sub = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&str> = it.collect();

    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "strategies" => {
            parse_flags(&rest, |flag, _| {
                Err(format!("unknown flag {flag} for strategies"))
            })?;
            Ok(Command::Strategies)
        }
        "list" => {
            let mut family = None;
            parse_flags(&rest, |flag, value| match flag {
                "--family" => {
                    family = Some(value.ok_or("--family needs a value")?.to_string());
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for list")),
            })?;
            Ok(Command::List { family })
        }
        "show" => {
            let mut target = None;
            parse_flags(&rest, |flag, value| {
                parse_target_flag(flag, value, &mut target)
                    .ok_or(())
                    .or(Err(format!("unknown flag {flag} for show")))
            })?;
            Ok(Command::Show {
                target: target.ok_or("show needs --bench, --id or --file")?,
            })
        }
        "run" | "explore" => {
            let mut target = None;
            let mut strategy = "dpor(sleep=true)".to_string();
            let mut limit = 100_000usize;
            let mut preemptions = None;
            let mut stop_on_bug = false;
            let mut seed = 0x1a2b_3c4du64;
            let mut deadline_ms = None;
            let mut progress = 0usize;
            let mut minimize = false;
            let mut save_traces = None;
            let mut json = false;
            let mut metrics = false;
            let mut metrics_json = None;
            let mut profile = None;
            let mut log_level = None;
            let mut checkpoint_dir = None;
            let mut checkpoint_every = 1000usize;
            let mut resume = false;
            parse_flags(&rest, |flag, value| {
                if parse_target_flag(flag, value, &mut target).is_some() {
                    return Ok(());
                }
                match flag {
                    "--strategy" => {
                        let spec = value.ok_or("--strategy needs a value")?;
                        // Validate eagerly so typos fail before exploring.
                        StrategyRegistry::default()
                            .create(spec)
                            .map_err(|e| e.to_string())?;
                        strategy = spec.to_string();
                        Ok(())
                    }
                    "--limit" => {
                        limit = parse_num(value, "--limit")?;
                        Ok(())
                    }
                    "--preemptions" => {
                        preemptions = Some(parse_num(value, "--preemptions")? as u32);
                        Ok(())
                    }
                    "--stop-on-bug" => {
                        stop_on_bug = true;
                        Ok(())
                    }
                    "--seed" => {
                        seed = parse_num(value, "--seed")? as u64;
                        Ok(())
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(parse_num(value, "--deadline-ms")? as u64);
                        Ok(())
                    }
                    "--progress" => {
                        progress = parse_num(value, "--progress")?;
                        Ok(())
                    }
                    "--minimize" => {
                        minimize = true;
                        Ok(())
                    }
                    "--save-traces" => {
                        save_traces =
                            Some(value.ok_or("--save-traces needs a directory")?.to_string());
                        Ok(())
                    }
                    "--json" => {
                        json = true;
                        Ok(())
                    }
                    "--metrics" => {
                        metrics = true;
                        Ok(())
                    }
                    "--metrics-json" => {
                        metrics_json =
                            Some(value.ok_or("--metrics-json needs a file path")?.to_string());
                        Ok(())
                    }
                    "--profile" => {
                        profile = Some(value.ok_or("--profile needs a file path")?.to_string());
                        Ok(())
                    }
                    "--log-level" => {
                        let name = value.ok_or("--log-level needs a value")?;
                        log_level = Some(lazylocks::obs::LogLevel::parse(name).ok_or(format!(
                            "unknown log level {name:?}; known: error, warn, info, debug"
                        ))?);
                        Ok(())
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir = Some(
                            value
                                .ok_or("--checkpoint-dir needs a directory")?
                                .to_string(),
                        );
                        Ok(())
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = parse_num(value, "--checkpoint-every")?;
                        if checkpoint_every == 0 {
                            return Err("--checkpoint-every must be at least 1".to_string());
                        }
                        Ok(())
                    }
                    "--resume" => {
                        resume = true;
                        Ok(())
                    }
                    _ => Err(format!("unknown flag {flag} for {sub}")),
                }
            })?;
            if resume && checkpoint_dir.is_none() {
                return Err("--resume needs --checkpoint-dir".to_string());
            }
            Ok(Command::Run {
                target: target.ok_or(format!("{sub} needs --bench, --id or --file"))?,
                strategy,
                limit,
                preemptions,
                stop_on_bug,
                seed,
                deadline_ms,
                progress,
                minimize,
                save_traces,
                json,
                metrics,
                metrics_json,
                profile,
                log_level,
                checkpoint_dir,
                checkpoint_every,
                resume,
            })
        }
        "replay" => {
            let (path, flags) = match rest.split_first() {
                Some((first, flags)) if !first.starts_with("--") => (first.to_string(), flags),
                _ => return Err("replay needs an artifact file or directory".to_string()),
            };
            let mut target = None;
            let mut json = false;
            let mut metrics = false;
            let mut metrics_json = None;
            parse_flags(flags, |flag, value| {
                if parse_target_flag(flag, value, &mut target).is_some() {
                    return Ok(());
                }
                match flag {
                    "--json" => {
                        json = true;
                        Ok(())
                    }
                    "--metrics" => {
                        metrics = true;
                        Ok(())
                    }
                    "--metrics-json" => {
                        metrics_json =
                            Some(value.ok_or("--metrics-json needs a file path")?.to_string());
                        Ok(())
                    }
                    _ => Err(format!("unknown flag {flag} for replay")),
                }
            })?;
            Ok(Command::Replay {
                path,
                target,
                json,
                metrics,
                metrics_json,
            })
        }
        "corpus" => {
            let (action, flags) = match rest.split_first() {
                Some((&"list", flags)) => (CorpusAction::List, flags),
                Some((&"prune", flags)) => (CorpusAction::Prune, flags),
                Some((&"seed", flags)) => (CorpusAction::Seed { limit: 10_000 }, flags),
                _ => return Err("corpus needs an action: list, prune or seed".to_string()),
            };
            let mut action = action;
            let mut dir = None;
            let mut json = false;
            parse_flags(flags, |flag, value| match flag {
                "--dir" => {
                    dir = Some(value.ok_or("--dir needs a value")?.to_string());
                    Ok(())
                }
                "--limit" => match &mut action {
                    CorpusAction::Seed { limit } => {
                        *limit = parse_num(value, "--limit")?;
                        Ok(())
                    }
                    _ => Err("--limit only applies to corpus seed".to_string()),
                },
                "--json" => {
                    json = true;
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for corpus")),
            })?;
            Ok(Command::Corpus { action, dir, json })
        }
        "fuzz" => {
            let mut profile = None;
            let mut cases: Option<usize> = None;
            let mut seed = 7u64;
            let mut budget: Option<usize> = None;
            let mut size = 3usize;
            let mut save = None;
            let mut json = false;
            let mut quick = false;
            let mut metrics = false;
            let mut metrics_json = None;
            parse_flags(&rest, |flag, value| match flag {
                "--profile" => {
                    let name = value.ok_or("--profile needs a value")?;
                    let parsed =
                        lazylocks_fuzz::ShapeProfile::from_name(name).ok_or_else(|| {
                            let known: Vec<&str> = lazylocks_fuzz::ShapeProfile::ALL
                                .iter()
                                .map(|p| p.name())
                                .collect();
                            format!("unknown profile {name:?}; known: {}", known.join(", "))
                        })?;
                    profile = Some(parsed);
                    Ok(())
                }
                "--cases" => {
                    cases = Some(parse_num(value, "--cases")?);
                    Ok(())
                }
                "--seed" => {
                    seed = parse_num(value, "--seed")? as u64;
                    Ok(())
                }
                "--budget" => {
                    budget = Some(parse_num(value, "--budget")?);
                    Ok(())
                }
                "--size" => {
                    size = parse_num(value, "--size")?;
                    // Reject out-of-range dials here rather than letting
                    // the generator clamp them silently.
                    if !(1..=lazylocks_fuzz::MAX_SIZE).contains(&size) {
                        return Err(format!("--size must be 1..={}", lazylocks_fuzz::MAX_SIZE));
                    }
                    Ok(())
                }
                "--save" => {
                    save = Some(value.ok_or("--save needs a directory")?.to_string());
                    Ok(())
                }
                "--json" => {
                    json = true;
                    Ok(())
                }
                "--quick" => {
                    quick = true;
                    Ok(())
                }
                "--metrics" => {
                    metrics = true;
                    Ok(())
                }
                "--metrics-json" => {
                    metrics_json =
                        Some(value.ok_or("--metrics-json needs a file path")?.to_string());
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for fuzz")),
            })?;
            // --quick is the bounded CI preset; explicit flags still win.
            let (default_cases, default_budget) = if quick { (30, 8_000) } else { (100, 20_000) };
            Ok(Command::Fuzz {
                profile,
                cases: cases.unwrap_or(default_cases),
                seed,
                budget: budget.unwrap_or(default_budget),
                size,
                save,
                json,
                metrics,
                metrics_json,
            })
        }
        "profile" => {
            // An optional leading positional names a saved profile
            // document; otherwise a program target must be given.
            let (doc, flags) = match rest.split_first() {
                Some((first, flags)) if !first.starts_with("--") => {
                    (Some(first.to_string()), flags)
                }
                _ => (None, rest.as_slice()),
            };
            let mut target = None;
            let mut strategy = None;
            let mut limit = 100_000usize;
            let mut json = false;
            parse_flags(flags, |flag, value| {
                if parse_target_flag(flag, value, &mut target).is_some() {
                    return Ok(());
                }
                match flag {
                    "--strategy" => {
                        let spec = value.ok_or("--strategy needs a value")?;
                        StrategyRegistry::default()
                            .create(spec)
                            .map_err(|e| e.to_string())?;
                        strategy = Some(spec.to_string());
                        Ok(())
                    }
                    "--limit" => {
                        limit = parse_num(value, "--limit")?;
                        Ok(())
                    }
                    "--json" => {
                        json = true;
                        Ok(())
                    }
                    _ => Err(format!("unknown flag {flag} for profile")),
                }
            })?;
            if doc.is_some() && target.is_some() {
                return Err("profile takes a DOC.json or a target, not both".to_string());
            }
            if doc.is_none() && target.is_none() {
                return Err("profile needs a DOC.json, or --bench, --id or --file".to_string());
            }
            if doc.is_some() && strategy.is_some() {
                return Err("--strategy only applies when profiling a target".to_string());
            }
            Ok(Command::Profile {
                doc,
                target,
                strategy,
                limit,
                json,
            })
        }
        "compare" => {
            let mut target = None;
            let mut limit = 10_000usize;
            parse_flags(&rest, |flag, value| {
                if parse_target_flag(flag, value, &mut target).is_some() {
                    return Ok(());
                }
                match flag {
                    "--limit" => {
                        limit = parse_num(value, "--limit")?;
                        Ok(())
                    }
                    _ => Err(format!("unknown flag {flag} for compare")),
                }
            })?;
            Ok(Command::Compare {
                target: target.ok_or("compare needs --bench, --id or --file")?,
                limit,
            })
        }
        "races" => {
            let mut target = None;
            let mut walks = 100usize;
            let mut seed = 7u64;
            parse_flags(&rest, |flag, value| {
                if parse_target_flag(flag, value, &mut target).is_some() {
                    return Ok(());
                }
                match flag {
                    "--walks" => {
                        walks = parse_num(value, "--walks")?;
                        Ok(())
                    }
                    "--seed" => {
                        seed = parse_num(value, "--seed")? as u64;
                        Ok(())
                    }
                    _ => Err(format!("unknown flag {flag} for races")),
                }
            })?;
            Ok(Command::Races {
                target: target.ok_or("races needs --bench, --id or --file")?,
                walks,
                seed,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7077".to_string();
            let mut workers = 2usize;
            let mut corpus = None;
            let mut max_job_budget = 1_000_000usize;
            let mut journal = None;
            let mut distributed = false;
            let mut token = None;
            let mut lease_ttl_ms = 5_000u64;
            let mut slice = 25_000usize;
            let mut grace_ms = 1_000u64;
            parse_flags(&rest, |flag, value| match flag {
                "--addr" => {
                    addr = value.ok_or("--addr needs HOST:PORT")?.to_string();
                    Ok(())
                }
                "--workers" => {
                    workers = parse_num(value, "--workers")?;
                    if workers == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                    Ok(())
                }
                "--corpus" => {
                    corpus = Some(value.ok_or("--corpus needs a directory")?.to_string());
                    Ok(())
                }
                "--max-job-budget" => {
                    max_job_budget = parse_num(value, "--max-job-budget")?;
                    Ok(())
                }
                "--journal" => {
                    journal = Some(value.ok_or("--journal needs a file path")?.to_string());
                    Ok(())
                }
                "--distributed" => {
                    distributed = true;
                    Ok(())
                }
                "--token" => {
                    token = Some(value.ok_or("--token needs a secret")?.to_string());
                    Ok(())
                }
                "--lease-ttl-ms" => {
                    lease_ttl_ms = parse_num(value, "--lease-ttl-ms")? as u64;
                    if lease_ttl_ms == 0 {
                        return Err("--lease-ttl-ms must be at least 1".to_string());
                    }
                    Ok(())
                }
                "--slice" => {
                    slice = parse_num(value, "--slice")?;
                    if slice == 0 {
                        return Err("--slice must be at least 1".to_string());
                    }
                    Ok(())
                }
                "--grace-ms" => {
                    grace_ms = parse_num(value, "--grace-ms")? as u64;
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for serve")),
            })?;
            Ok(Command::Serve {
                addr,
                workers,
                corpus,
                max_job_budget,
                journal,
                distributed,
                token,
                lease_ttl_ms,
                slice,
                grace_ms,
            })
        }
        "worker" => {
            let mut addr = "127.0.0.1:7077".to_string();
            let mut token = None;
            let mut poll_ms = 200u64;
            let mut retries = 5u32;
            let mut retry_ms = 100u64;
            let mut max_slices = None;
            parse_flags(&rest, |flag, value| match flag {
                "--addr" => {
                    addr = value.ok_or("--addr needs HOST:PORT")?.to_string();
                    Ok(())
                }
                "--token" => {
                    token = Some(value.ok_or("--token needs a secret")?.to_string());
                    Ok(())
                }
                "--poll-ms" => {
                    poll_ms = parse_num(value, "--poll-ms")? as u64;
                    Ok(())
                }
                "--retries" => {
                    retries = parse_num(value, "--retries")? as u32;
                    Ok(())
                }
                "--retry-ms" => {
                    retry_ms = parse_num(value, "--retry-ms")? as u64;
                    Ok(())
                }
                "--max-slices" => {
                    max_slices = Some(parse_num(value, "--max-slices")? as u64);
                    Ok(())
                }
                _ => Err(format!("unknown flag {flag} for worker")),
            })?;
            Ok(Command::Worker {
                addr,
                token,
                poll_ms,
                retries,
                retry_ms,
                max_slices,
            })
        }
        "client" => {
            let (verb, rest) = match rest.split_first() {
                Some((&verb, rest)) if !verb.starts_with("--") => (verb, rest),
                _ => {
                    return Err(
                        "client needs an action: submit, status, cancel, events, metrics \
                         or shutdown"
                            .to_string(),
                    )
                }
            };
            // `status [ID]`, `cancel ID`, `events ID` take a positional
            // job id before any flags.
            let (id, flags): (Option<u64>, &[&str]) = match rest.split_first() {
                Some((&first, tail)) if !first.starts_with("--") => {
                    let id = first.parse().map_err(|_| format!("bad job id {first:?}"))?;
                    (Some(id), tail)
                }
                _ => (None, rest),
            };
            let mut addr = "127.0.0.1:7077".to_string();
            let mut retries = 0u32;
            let mut retry_ms = 100u64;
            let mut token = None;
            // The flags every client verb shares: the daemon address,
            // the retry policy and the shared-secret token.
            let grab_common = |flag: &str,
                               value: Option<&str>,
                               addr: &mut String,
                               retries: &mut u32,
                               retry_ms: &mut u64,
                               token: &mut Option<String>|
             -> Option<Result<(), String>> {
                match flag {
                    "--addr" => Some(match value {
                        Some(v) => {
                            *addr = v.to_string();
                            Ok(())
                        }
                        None => Err("--addr needs HOST:PORT".to_string()),
                    }),
                    "--retries" => Some(parse_num(value, "--retries").map(|n| *retries = n as u32)),
                    "--retry-ms" => {
                        Some(parse_num(value, "--retry-ms").map(|n| *retry_ms = n as u64))
                    }
                    "--token" => Some(match value {
                        Some(v) => {
                            *token = Some(v.to_string());
                            Ok(())
                        }
                        None => Err("--token needs a secret".to_string()),
                    }),
                    _ => None,
                }
            };
            let action = match verb {
                "submit" => {
                    if id.is_some() {
                        return Err("client submit takes no job id".to_string());
                    }
                    let mut target = None;
                    let mut strategy = "dpor(sleep=true)".to_string();
                    let mut limit = 100_000usize;
                    let mut seed = 0u64;
                    let mut preemptions = None;
                    let mut stop_on_bug = false;
                    let mut minimize = false;
                    let mut deadline_ms = None;
                    let mut priority = 0i64;
                    let mut wait = false;
                    parse_flags(flags, |flag, value| {
                        if let Some(done) = grab_common(
                            flag,
                            value,
                            &mut addr,
                            &mut retries,
                            &mut retry_ms,
                            &mut token,
                        ) {
                            return done;
                        }
                        if parse_target_flag(flag, value, &mut target).is_some() {
                            return Ok(());
                        }
                        match flag {
                            "--strategy" => {
                                let spec = value.ok_or("--strategy needs a value")?;
                                StrategyRegistry::default()
                                    .create(spec)
                                    .map_err(|e| e.to_string())?;
                                strategy = spec.to_string();
                                Ok(())
                            }
                            "--limit" => {
                                limit = parse_num(value, "--limit")?;
                                Ok(())
                            }
                            "--seed" => {
                                seed = parse_num(value, "--seed")? as u64;
                                Ok(())
                            }
                            "--preemptions" => {
                                preemptions = Some(parse_num(value, "--preemptions")? as u32);
                                Ok(())
                            }
                            "--stop-on-bug" => {
                                stop_on_bug = true;
                                Ok(())
                            }
                            "--minimize" => {
                                minimize = true;
                                Ok(())
                            }
                            "--deadline-ms" => {
                                deadline_ms = Some(parse_num(value, "--deadline-ms")? as u64);
                                Ok(())
                            }
                            "--priority" => {
                                priority = value
                                    .ok_or("--priority needs a value")?
                                    .parse()
                                    .map_err(|_| "--priority needs an integer".to_string())?;
                                Ok(())
                            }
                            "--wait" => {
                                wait = true;
                                Ok(())
                            }
                            _ => Err(format!("unknown flag {flag} for client submit")),
                        }
                    })?;
                    ClientAction::Submit {
                        target: target.ok_or("client submit needs --bench, --id or --file")?,
                        strategy,
                        limit,
                        seed,
                        preemptions,
                        stop_on_bug,
                        minimize,
                        deadline_ms,
                        priority,
                        wait,
                    }
                }
                "status" => {
                    parse_flags(flags, |flag, value| {
                        grab_common(
                            flag,
                            value,
                            &mut addr,
                            &mut retries,
                            &mut retry_ms,
                            &mut token,
                        )
                        .unwrap_or_else(|| Err(format!("unknown flag {flag} for client status")))
                    })?;
                    ClientAction::Status { id }
                }
                "cancel" => {
                    parse_flags(flags, |flag, value| {
                        grab_common(
                            flag,
                            value,
                            &mut addr,
                            &mut retries,
                            &mut retry_ms,
                            &mut token,
                        )
                        .unwrap_or_else(|| Err(format!("unknown flag {flag} for client cancel")))
                    })?;
                    ClientAction::Cancel {
                        id: id.ok_or("client cancel needs a job id")?,
                    }
                }
                "events" => {
                    let mut since = 0u64;
                    parse_flags(flags, |flag, value| {
                        if let Some(done) = grab_common(
                            flag,
                            value,
                            &mut addr,
                            &mut retries,
                            &mut retry_ms,
                            &mut token,
                        ) {
                            return done;
                        }
                        match flag {
                            "--since" => {
                                since = parse_num(value, "--since")? as u64;
                                Ok(())
                            }
                            _ => Err(format!("unknown flag {flag} for client events")),
                        }
                    })?;
                    ClientAction::Events {
                        id: id.ok_or("client events needs a job id")?,
                        since,
                    }
                }
                "metrics" => {
                    if id.is_some() {
                        return Err("client metrics takes no job id".to_string());
                    }
                    parse_flags(flags, |flag, value| {
                        grab_common(
                            flag,
                            value,
                            &mut addr,
                            &mut retries,
                            &mut retry_ms,
                            &mut token,
                        )
                        .unwrap_or_else(|| Err(format!("unknown flag {flag} for client metrics")))
                    })?;
                    ClientAction::Metrics
                }
                "shutdown" => {
                    if id.is_some() {
                        return Err("client shutdown takes no job id".to_string());
                    }
                    parse_flags(flags, |flag, value| {
                        grab_common(
                            flag,
                            value,
                            &mut addr,
                            &mut retries,
                            &mut retry_ms,
                            &mut token,
                        )
                        .unwrap_or_else(|| Err(format!("unknown flag {flag} for client shutdown")))
                    })?;
                    ClientAction::Shutdown
                }
                other => return Err(format!("unknown client action {other:?}")),
            };
            Ok(Command::Client {
                addr,
                action,
                retries,
                retry_ms,
                token,
            })
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Handles the shared target flags; returns `Some(())` if `flag` was one of
/// them.
fn parse_target_flag(flag: &str, value: Option<&str>, target: &mut Option<Target>) -> Option<()> {
    match flag {
        "--bench" => {
            *target = Some(Target::Bench(value?.to_string()));
            Some(())
        }
        "--id" => {
            let id: usize = value?.parse().ok()?;
            *target = Some(Target::Id(id));
            Some(())
        }
        "--file" => {
            *target = Some(Target::File(value?.to_string()));
            Some(())
        }
        _ => None,
    }
}

fn parse_num(value: Option<&str>, flag: &str) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} needs an integer"))
}

/// Walks `--flag [value]` pairs. Flags that take values consume the next
/// token; boolean flags receive `None`... the callback decides by asking
/// for the value lazily via the passed `Option`.
fn parse_flags(
    rest: &[&str],
    mut on_flag: impl FnMut(&str, Option<&str>) -> Result<(), String>,
) -> Result<(), String> {
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i];
        if !flag.starts_with("--") {
            return Err(format!("unexpected argument {flag:?}"));
        }
        // Boolean flags take no value; everything else consumes one.
        let boolean = matches!(
            flag,
            "--stop-on-bug"
                | "--minimize"
                | "--json"
                | "--quick"
                | "--wait"
                | "--metrics"
                | "--resume"
                | "--distributed"
        );
        let value = if boolean {
            None
        } else {
            let v = rest.get(i + 1).copied();
            if v.is_some() {
                i += 1;
            }
            v
        };
        on_flag(flag, value)?;
        i += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_list() {
        assert_eq!(
            parse(&argv("list")).unwrap(),
            Command::List { family: None }
        );
        assert_eq!(
            parse(&argv("list --family coarse")).unwrap(),
            Command::List {
                family: Some("coarse".to_string())
            }
        );
    }

    #[test]
    fn parses_strategies() {
        assert_eq!(parse(&argv("strategies")).unwrap(), Command::Strategies);
    }

    #[test]
    fn parses_run_with_all_flags() {
        let cmd = parse(&argv(
            "run --bench peterson --strategy lazy-caching --limit 500 \
             --preemptions 2 --stop-on-bug --seed 9 --deadline-ms 2000 \
             --progress 100 --minimize --save-traces traces --json \
             --metrics --metrics-json m.json --profile p.json --log-level debug \
             --checkpoint-dir cp --checkpoint-every 64 --resume",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                target,
                strategy,
                limit,
                preemptions,
                stop_on_bug,
                seed,
                deadline_ms,
                progress,
                minimize,
                save_traces,
                json,
                metrics,
                metrics_json,
                profile,
                log_level,
                checkpoint_dir,
                checkpoint_every,
                resume,
            } => {
                assert_eq!(target, Target::Bench("peterson".to_string()));
                assert_eq!(strategy, "lazy-caching");
                assert_eq!(limit, 500);
                assert_eq!(preemptions, Some(2));
                assert!(stop_on_bug);
                assert_eq!(seed, 9);
                assert_eq!(deadline_ms, Some(2000));
                assert_eq!(progress, 100);
                assert!(minimize);
                assert_eq!(save_traces.as_deref(), Some("traces"));
                assert!(json);
                assert!(metrics);
                assert_eq!(metrics_json.as_deref(), Some("m.json"));
                assert_eq!(profile.as_deref(), Some("p.json"));
                assert_eq!(log_level, Some(lazylocks::obs::LogLevel::Debug));
                assert_eq!(checkpoint_dir.as_deref(), Some("cp"));
                assert_eq!(checkpoint_every, 64);
                assert!(resume);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("run --bench x --log-level loud")).is_err());
        // Checkpointing defaults: off, cadence 1000, no resume.
        match parse(&argv("run --bench x")).unwrap() {
            Command::Run {
                checkpoint_dir,
                checkpoint_every,
                resume,
                ..
            } => {
                assert_eq!(checkpoint_dir, None);
                assert_eq!(checkpoint_every, 1000);
                assert!(!resume);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("run --bench x --resume")).is_err());
        assert!(parse(&argv(
            "run --bench x --checkpoint-dir cp --checkpoint-every 0"
        ))
        .is_err());
    }

    #[test]
    fn explore_is_an_alias_of_run() {
        let a = parse(&argv("explore --id 1 --stop-on-bug")).unwrap();
        let b = parse(&argv("run --id 1 --stop-on-bug")).unwrap();
        assert_eq!(a, b);
        assert!(matches!(a, Command::Run { .. }));
    }

    #[test]
    fn parses_replay() {
        assert_eq!(
            parse(&argv("replay trace.json")).unwrap(),
            Command::Replay {
                path: "trace.json".to_string(),
                target: None,
                json: false,
                metrics: false,
                metrics_json: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "replay corpus --bench peterson --json --metrics --metrics-json m.json"
            ))
            .unwrap(),
            Command::Replay {
                path: "corpus".to_string(),
                target: Some(Target::Bench("peterson".to_string())),
                json: true,
                metrics: true,
                metrics_json: Some("m.json".to_string()),
            }
        );
        assert!(parse(&argv("replay")).is_err());
        assert!(parse(&argv("replay --json")).is_err());
        assert!(parse(&argv("replay t.json --walks 3")).is_err());
    }

    #[test]
    fn parses_corpus() {
        assert_eq!(
            parse(&argv("corpus list")).unwrap(),
            Command::Corpus {
                action: CorpusAction::List,
                dir: None,
                json: false,
            }
        );
        assert_eq!(
            parse(&argv("corpus prune --dir d --json")).unwrap(),
            Command::Corpus {
                action: CorpusAction::Prune,
                dir: Some("d".to_string()),
                json: true,
            }
        );
        assert_eq!(
            parse(&argv("corpus seed --limit 50")).unwrap(),
            Command::Corpus {
                action: CorpusAction::Seed { limit: 50 },
                dir: None,
                json: false,
            }
        );
        assert!(parse(&argv("corpus")).is_err());
        assert!(parse(&argv("corpus polish")).is_err());
        assert!(parse(&argv("corpus list --limit 3")).is_err());
    }

    #[test]
    fn parses_parameterised_strategy_specs() {
        let cmd = parse(&argv("run --id 1 --strategy dpor(sleep=true)")).unwrap();
        match cmd {
            Command::Run { strategy, .. } => assert_eq!(strategy, "dpor(sleep=true)"),
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&argv("run --id 1 --strategy parallel(workers=2)")).unwrap();
        match cmd {
            Command::Run { strategy, .. } => assert_eq!(strategy, "parallel(workers=2)"),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_fuzz() {
        assert_eq!(
            parse(&argv("fuzz")).unwrap(),
            Command::Fuzz {
                profile: None,
                cases: 100,
                seed: 7,
                budget: 20_000,
                size: 3,
                save: None,
                json: false,
                metrics: false,
                metrics_json: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "fuzz --profile deadlock-prone --cases 50 --seed 9 --budget 500 \
                 --size 2 --save repros --json --metrics --metrics-json m.json"
            ))
            .unwrap(),
            Command::Fuzz {
                profile: Some(lazylocks_fuzz::ShapeProfile::DeadlockProne),
                cases: 50,
                seed: 9,
                budget: 500,
                size: 2,
                save: Some("repros".to_string()),
                json: true,
                metrics: true,
                metrics_json: Some("m.json".to_string()),
            }
        );
        // --quick bounds the defaults but explicit flags win.
        assert_eq!(
            parse(&argv("fuzz --quick")).unwrap(),
            Command::Fuzz {
                profile: None,
                cases: 30,
                seed: 7,
                budget: 8_000,
                size: 3,
                save: None,
                json: false,
                metrics: false,
                metrics_json: None,
            }
        );
        match parse(&argv("fuzz --quick --cases 5")).unwrap() {
            Command::Fuzz { cases, budget, .. } => {
                assert_eq!(cases, 5);
                assert_eq!(budget, 8_000);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("fuzz --profile nope")).is_err());
        assert!(parse(&argv("fuzz --size 0")).is_err());
        assert!(parse(&argv("fuzz --size 10")).is_err());
        assert!(parse(&argv("fuzz --cases many")).is_err());
        assert!(parse(&argv("fuzz --walks 3")).is_err());
    }

    #[test]
    fn parses_profile() {
        // A saved document renders directly.
        assert_eq!(
            parse(&argv("profile p.json")).unwrap(),
            Command::Profile {
                doc: Some("p.json".to_string()),
                target: None,
                strategy: None,
                limit: 100_000,
                json: false,
            }
        );
        // A target profiles the dpor/lazy-dpor pair (or one --strategy).
        assert_eq!(
            parse(&argv(
                "profile --bench peterson --strategy dpor(sleep=true) --limit 500 --json"
            ))
            .unwrap(),
            Command::Profile {
                doc: None,
                target: Some(Target::Bench("peterson".to_string())),
                strategy: Some("dpor(sleep=true)".to_string()),
                limit: 500,
                json: true,
            }
        );
        assert!(parse(&argv("profile")).is_err());
        assert!(parse(&argv("profile p.json --bench x")).is_err());
        assert!(parse(&argv("profile p.json --strategy dpor")).is_err());
        assert!(parse(&argv("profile --bench x --strategy nope")).is_err());
        assert!(parse(&argv("profile --bench x --walks 3")).is_err());
    }

    #[test]
    fn parses_targets() {
        assert!(matches!(
            parse(&argv("show --id 5")).unwrap(),
            Command::Show {
                target: Target::Id(5)
            }
        ));
        assert!(matches!(
            parse(&argv("show --file prog.llk")).unwrap(),
            Command::Show {
                target: Target::File(_)
            }
        ));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run --bench x --strategy nope")).is_err());
        assert!(parse(&argv("run --bench x --strategy dpor(sleep=perhaps)")).is_err());
        assert!(parse(&argv("run --bench x --strategy dfs(workers=2)")).is_err());
        assert!(parse(&argv("run --bench x --limit abc")).is_err());
        assert!(parse(&argv("list --bogus 1")).is_err());
        assert!(parse(&argv("strategies --bogus")).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7077".to_string(),
                workers: 2,
                corpus: None,
                max_job_budget: 1_000_000,
                journal: None,
                distributed: false,
                token: None,
                lease_ttl_ms: 5_000,
                slice: 25_000,
                grace_ms: 1_000,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --addr 127.0.0.1:0 --workers 4 --corpus c --max-job-budget 5000 --journal j.jsonl"
            ))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".to_string(),
                workers: 4,
                corpus: Some("c".to_string()),
                max_job_budget: 5000,
                journal: Some("j.jsonl".to_string()),
                distributed: false,
                token: None,
                lease_ttl_ms: 5_000,
                slice: 25_000,
                grace_ms: 1_000,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --distributed --token hunter2 --lease-ttl-ms 800 --slice 64 --grace-ms 50"
            ))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7077".to_string(),
                workers: 2,
                corpus: None,
                max_job_budget: 1_000_000,
                journal: None,
                distributed: true,
                token: Some("hunter2".to_string()),
                lease_ttl_ms: 800,
                slice: 64,
                grace_ms: 50,
            }
        );
        assert!(parse(&argv("serve --workers 0")).is_err());
        assert!(parse(&argv("serve --lease-ttl-ms 0")).is_err());
        assert!(parse(&argv("serve --slice 0")).is_err());
        assert!(parse(&argv("serve --bogus")).is_err());
    }

    #[test]
    fn parses_worker() {
        assert_eq!(
            parse(&argv("worker")).unwrap(),
            Command::Worker {
                addr: "127.0.0.1:7077".to_string(),
                token: None,
                poll_ms: 200,
                retries: 5,
                retry_ms: 100,
                max_slices: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "worker --addr h:9 --token s --poll-ms 10 --retries 2 --retry-ms 20 --max-slices 3"
            ))
            .unwrap(),
            Command::Worker {
                addr: "h:9".to_string(),
                token: Some("s".to_string()),
                poll_ms: 10,
                retries: 2,
                retry_ms: 20,
                max_slices: Some(3),
            }
        );
        assert!(parse(&argv("worker --bogus")).is_err());
        assert!(parse(&argv("worker --poll-ms fast")).is_err());
    }

    #[test]
    fn parses_client_actions() {
        match parse(&argv(
            "client submit --addr 127.0.0.1:9 --bench deadlock --strategy dfs \
             --limit 50 --seed 3 --stop-on-bug --minimize --deadline-ms 100 \
             --priority -2 --wait",
        ))
        .unwrap()
        {
            Command::Client {
                addr,
                action,
                retries,
                retry_ms,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:9");
                assert_eq!(retries, 0, "retries default to fail-fast");
                assert_eq!(retry_ms, 100);
                match action {
                    ClientAction::Submit {
                        target,
                        strategy,
                        limit,
                        seed,
                        stop_on_bug,
                        minimize,
                        deadline_ms,
                        priority,
                        wait,
                        ..
                    } => {
                        assert_eq!(target, Target::Bench("deadlock".to_string()));
                        assert_eq!(strategy, "dfs");
                        assert_eq!(limit, 50);
                        assert_eq!(seed, 3);
                        assert!(stop_on_bug);
                        assert!(minimize);
                        assert_eq!(deadline_ms, Some(100));
                        assert_eq!(priority, -2);
                        assert!(wait);
                    }
                    other => panic!("wrong action: {other:?}"),
                }
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse(&argv("client status")).unwrap(),
            Command::Client {
                addr: "127.0.0.1:7077".to_string(),
                action: ClientAction::Status { id: None },
                retries: 0,
                retry_ms: 100,
                token: None,
            }
        );
        assert_eq!(
            parse(&argv("client status 7")).unwrap(),
            Command::Client {
                addr: "127.0.0.1:7077".to_string(),
                action: ClientAction::Status { id: Some(7) },
                retries: 0,
                retry_ms: 100,
                token: None,
            }
        );
        assert_eq!(
            parse(&argv("client cancel 3 --addr h:1")).unwrap(),
            Command::Client {
                addr: "h:1".to_string(),
                action: ClientAction::Cancel { id: 3 },
                retries: 0,
                retry_ms: 100,
                token: None,
            }
        );
        assert_eq!(
            parse(&argv("client events 3 --since 5")).unwrap(),
            Command::Client {
                addr: "127.0.0.1:7077".to_string(),
                action: ClientAction::Events { id: 3, since: 5 },
                retries: 0,
                retry_ms: 100,
                token: None,
            }
        );
        assert_eq!(
            parse(&argv("client metrics --addr h:2")).unwrap(),
            Command::Client {
                addr: "h:2".to_string(),
                action: ClientAction::Metrics,
                retries: 0,
                retry_ms: 100,
                token: None,
            }
        );
        assert!(parse(&argv("client metrics 3")).is_err());
        assert_eq!(
            parse(&argv("client shutdown")).unwrap(),
            Command::Client {
                addr: "127.0.0.1:7077".to_string(),
                action: ClientAction::Shutdown,
                retries: 0,
                retry_ms: 100,
                token: None,
            }
        );
        // The retry policy is shared by every client verb.
        assert_eq!(
            parse(&argv("client status --retries 5 --retry-ms 250")).unwrap(),
            Command::Client {
                addr: "127.0.0.1:7077".to_string(),
                action: ClientAction::Status { id: None },
                retries: 5,
                retry_ms: 250,
                token: None,
            }
        );
        // The shared token flag reaches every verb too.
        assert_eq!(
            parse(&argv("client shutdown --token s3cret")).unwrap(),
            Command::Client {
                addr: "127.0.0.1:7077".to_string(),
                action: ClientAction::Shutdown,
                retries: 0,
                retry_ms: 100,
                token: Some("s3cret".to_string()),
            }
        );
        match parse(&argv("client submit --bench deadlock --retries 2")).unwrap() {
            Command::Client {
                retries, retry_ms, ..
            } => {
                assert_eq!(retries, 2);
                assert_eq!(retry_ms, 100);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("client status --retries many")).is_err());
        assert!(parse(&argv("client")).is_err());
        assert!(parse(&argv("client frob")).is_err());
        assert!(parse(&argv("client submit")).is_err());
        assert!(parse(&argv("client submit 4 --bench x")).is_err());
        assert!(parse(&argv("client submit --bench x --strategy nope")).is_err());
        assert!(parse(&argv("client cancel")).is_err());
        assert!(parse(&argv("client cancel x")).is_err());
        assert!(parse(&argv("client events")).is_err());
        assert!(parse(&argv("client shutdown 3")).is_err());
        assert!(parse(&argv("client status --walks 2")).is_err());
    }

    #[test]
    fn help_parses() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }
}
