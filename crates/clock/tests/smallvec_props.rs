//! Property tests for the small-vec `VectorClock` storage: every operation
//! must agree with a reference `Vec<u32>` model on both sides of the
//! inline↔spill boundary, and `Hash`/`Eq` must stay consistent.
//!
//! Cases are drawn from a deterministic generator (fixed seed, fixed case
//! count) instead of an external property-testing crate, so failures
//! always reproduce bit-for-bit.

use lazylocks_clock::{CausalOrd, VectorClock, INLINE_WIDTH};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const CASES: usize = 128;

/// Widths straddling the inline↔spill boundary (plus the degenerate ones).
const WIDTHS: &[usize] = &[
    1,
    2,
    INLINE_WIDTH - 1,
    INLINE_WIDTH,
    INLINE_WIDTH + 1,
    2 * INLINE_WIDTH,
];

/// A tiny deterministic SplitMix64 (duplicated here rather than depending
/// on the core crate: `clock` sits at the bottom of the workspace).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn counts(&mut self, width: usize) -> Vec<u32> {
        (0..width).map(|_| (self.next() % 64) as u32).collect()
    }
}

/// The reference model: a plain `Vec<u32>` with the textbook lattice ops.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Model(Vec<u32>);

impl Model {
    fn join(&mut self, other: &Model) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    fn meet(&mut self, other: &Model) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).min(*b);
        }
    }

    fn le(&self, other: &Model) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    fn causal_cmp(&self, other: &Model) -> CausalOrd {
        match (self.le(other), other.le(self)) {
            (true, true) => CausalOrd::Equal,
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        }
    }
}

fn for_cases(mut check: impl FnMut(usize, Vec<u32>, Vec<u32>)) {
    let mut rng = Rng(0x5a11_c10c);
    for &width in WIDTHS {
        for _ in 0..CASES {
            check(width, rng.counts(width), rng.counts(width));
        }
    }
}

fn hash_of(v: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

#[test]
fn construction_round_trips_through_counts() {
    for_cases(|width, a, _| {
        let clock = VectorClock::from_counts(a.clone());
        assert_eq!(clock.counts(), &a[..]);
        assert_eq!(clock.width(), width);
        assert_eq!(clock.is_inline(), width <= INLINE_WIDTH);
    });
}

#[test]
fn join_matches_model() {
    for_cases(|_, a, b| {
        let mut clock = VectorClock::from_counts(a.clone());
        clock.join(&VectorClock::from_counts(b.clone()));
        let mut model = Model(a);
        model.join(&Model(b));
        assert_eq!(clock.counts(), &model.0[..]);
    });
}

#[test]
fn join_from_matches_model() {
    for_cases(|width, a, b| {
        let mut out = VectorClock::new(width);
        out.join_from(
            &VectorClock::from_counts(a.clone()),
            &VectorClock::from_counts(b.clone()),
        );
        let mut model = Model(a);
        model.join(&Model(b));
        assert_eq!(out.counts(), &model.0[..]);
    });
}

#[test]
fn meet_matches_model() {
    for_cases(|_, a, b| {
        let mut clock = VectorClock::from_counts(a.clone());
        clock.meet(&VectorClock::from_counts(b.clone()));
        let mut model = Model(a);
        model.meet(&Model(b));
        assert_eq!(clock.counts(), &model.0[..]);
    });
}

#[test]
fn tick_matches_model() {
    for_cases(|width, a, b| {
        let mut clock = VectorClock::from_counts(a.clone());
        let mut model = a;
        // Derive a deterministic thread index from the second sample.
        let t = b[0] as usize % width;
        let returned = clock.tick(t);
        model[t] += 1;
        assert_eq!(returned, model[t]);
        assert_eq!(clock.counts(), &model[..]);
    });
}

#[test]
fn assign_matches_model_and_keeps_storage() {
    for_cases(|width, a, b| {
        let mut clock = VectorClock::from_counts(a);
        clock.assign(&VectorClock::from_counts(b.clone()));
        assert_eq!(clock.counts(), &b[..]);
        assert_eq!(clock.is_inline(), width <= INLINE_WIDTH);
    });
}

#[test]
fn causal_cmp_matches_model() {
    for_cases(|_, a, b| {
        let x = VectorClock::from_counts(a.clone());
        let y = VectorClock::from_counts(b.clone());
        assert_eq!(x.causal_cmp(&y), Model(a).causal_cmp(&Model(b)));
    });
}

#[test]
fn le_lt_concurrent_match_model() {
    for_cases(|_, a, b| {
        let x = VectorClock::from_counts(a.clone());
        let y = VectorClock::from_counts(b.clone());
        let (ma, mb) = (Model(a), Model(b));
        assert_eq!(x.le(&y), ma.le(&mb));
        assert_eq!(x.lt(&y), ma.le(&mb) && ma != mb);
        assert_eq!(x.concurrent(&y), !ma.le(&mb) && !mb.le(&ma));
    });
}

#[test]
fn eq_and_hash_agree_with_the_model() {
    for_cases(|_, a, b| {
        let x = VectorClock::from_counts(a.clone());
        let y = VectorClock::from_counts(b.clone());
        assert_eq!(x == y, a == b, "Eq must match the counter vectors");
        if x == y {
            assert_eq!(hash_of(&x), hash_of(&y), "equal clocks must hash equal");
        }
        // A clock rebuilt through a different op sequence hashes the same.
        let mut z = VectorClock::new(x.width());
        z.assign(&x);
        assert_eq!(x, z);
        assert_eq!(hash_of(&x), hash_of(&z));
    });
}

#[test]
fn clone_is_deep_on_both_sides_of_the_boundary() {
    for_cases(|width, a, b| {
        let original = VectorClock::from_counts(a.clone());
        let mut copy = original.clone();
        let t = b[0] as usize % width;
        copy.tick(t);
        assert_eq!(original.counts(), &a[..], "clone must not share storage");
        assert_ne!(copy, original);
    });
}

#[test]
fn total_clear_write_bytes_match_model() {
    for_cases(|_, a, _| {
        let mut clock = VectorClock::from_counts(a.clone());
        assert_eq!(clock.total(), a.iter().map(|&c| u64::from(c)).sum::<u64>());
        let mut bytes = Vec::new();
        clock.write_bytes(&mut |chunk| bytes.extend_from_slice(chunk));
        let expected: Vec<u8> = a.iter().flat_map(|c| c.to_le_bytes()).collect();
        assert_eq!(bytes, expected);
        clock.clear();
        assert!(clock.is_zero());
        assert_eq!(clock.width(), a.len());
    });
}
