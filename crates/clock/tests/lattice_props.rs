//! Property-based tests: `VectorClock` under `join`/`meet` forms a lattice
//! and `causal_cmp` is a genuine partial order.

use lazylocks_clock::{CausalOrd, VectorClock};
use proptest::prelude::*;

const WIDTH: usize = 5;

fn clock_strategy() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..64, WIDTH).prop_map(VectorClock::from_counts)
}

proptest! {
    #[test]
    fn join_commutes(a in clock_strategy(), b in clock_strategy()) {
        prop_assert_eq!(a.joined(&b), b.joined(&a));
    }

    #[test]
    fn join_is_associative(a in clock_strategy(), b in clock_strategy(), c in clock_strategy()) {
        prop_assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
    }

    #[test]
    fn join_is_idempotent(a in clock_strategy()) {
        prop_assert_eq!(a.joined(&a), a);
    }

    #[test]
    fn join_is_least_upper_bound(a in clock_strategy(), b in clock_strategy()) {
        let j = a.joined(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
        // Least: any other upper bound dominates the join.
        let mut ub = a.clone();
        ub.join(&b);
        ub.tick(0);
        prop_assert!(j.le(&ub));
    }

    #[test]
    fn meet_is_greatest_lower_bound(a in clock_strategy(), b in clock_strategy()) {
        let mut m = a.clone();
        m.meet(&b);
        prop_assert!(m.le(&a));
        prop_assert!(m.le(&b));
    }

    #[test]
    fn absorption_laws(a in clock_strategy(), b in clock_strategy()) {
        // a ∨ (a ∧ b) = a
        let mut m = a.clone();
        m.meet(&b);
        prop_assert_eq!(a.joined(&m), a.clone());
        // a ∧ (a ∨ b) = a
        let mut n = a.clone();
        n.meet(&a.joined(&b));
        prop_assert_eq!(n, a);
    }

    #[test]
    fn le_is_reflexive_and_antisymmetric(a in clock_strategy(), b in clock_strategy()) {
        prop_assert!(a.le(&a));
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn le_is_transitive(a in clock_strategy(), b in clock_strategy(), c in clock_strategy()) {
        let j1 = a.joined(&b);
        let j2 = j1.joined(&c);
        // a ≤ a∨b ≤ (a∨b)∨c by construction; check the chain composes.
        prop_assert!(a.le(&j1));
        prop_assert!(j1.le(&j2));
        prop_assert!(a.le(&j2));
    }

    #[test]
    fn causal_cmp_is_consistent_with_le(a in clock_strategy(), b in clock_strategy()) {
        match a.causal_cmp(&b) {
            CausalOrd::Equal => prop_assert!(a.le(&b) && b.le(&a)),
            CausalOrd::Before => prop_assert!(a.le(&b) && !b.le(&a)),
            CausalOrd::After => prop_assert!(b.le(&a) && !a.le(&b)),
            CausalOrd::Concurrent => prop_assert!(!a.le(&b) && !b.le(&a)),
        }
    }

    #[test]
    fn tick_strictly_increases(a in clock_strategy(), t in 0usize..WIDTH) {
        let mut ticked = a.clone();
        ticked.tick(t);
        prop_assert!(a.lt(&ticked));
        prop_assert_eq!(a.causal_cmp(&ticked), CausalOrd::Before);
    }

    #[test]
    fn total_is_monotone_under_join(a in clock_strategy(), b in clock_strategy()) {
        let j = a.joined(&b);
        prop_assert!(j.total() >= a.total());
        prop_assert!(j.total() >= b.total());
        prop_assert!(j.total() <= a.total() + b.total());
    }
}
