//! Property-based tests: `VectorClock` under `join`/`meet` forms a lattice
//! and `causal_cmp` is a genuine partial order.
//!
//! Cases are drawn from a deterministic generator (fixed seed, fixed case
//! count) instead of an external property-testing crate, so failures
//! always reproduce bit-for-bit.

use lazylocks_clock::{CausalOrd, VectorClock};

const WIDTH: usize = 5;
const CASES: usize = 256;

/// A tiny deterministic SplitMix64 (duplicated here rather than depending
/// on the core crate: `clock` sits at the bottom of the workspace).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn clock(&mut self) -> VectorClock {
        VectorClock::from_counts((0..WIDTH).map(|_| (self.next() % 64) as u32).collect())
    }
}

/// Runs `check` on `CASES` deterministic triples of clocks.
fn for_clock_triples(mut check: impl FnMut(VectorClock, VectorClock, VectorClock)) {
    let mut rng = Rng(0xc10c_0c10);
    for _ in 0..CASES {
        check(rng.clock(), rng.clock(), rng.clock());
    }
}

#[test]
fn join_commutes() {
    for_clock_triples(|a, b, _| {
        assert_eq!(a.joined(&b), b.joined(&a));
    });
}

#[test]
fn join_is_associative() {
    for_clock_triples(|a, b, c| {
        assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
    });
}

#[test]
fn join_is_idempotent() {
    for_clock_triples(|a, _, _| {
        assert_eq!(a.joined(&a), a);
    });
}

#[test]
fn join_is_least_upper_bound() {
    for_clock_triples(|a, b, _| {
        let j = a.joined(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        // Least: any other upper bound dominates the join.
        let mut ub = a.clone();
        ub.join(&b);
        ub.tick(0);
        assert!(j.le(&ub));
    });
}

#[test]
fn meet_is_greatest_lower_bound() {
    for_clock_triples(|a, b, _| {
        let mut m = a.clone();
        m.meet(&b);
        assert!(m.le(&a));
        assert!(m.le(&b));
    });
}

#[test]
fn absorption_laws() {
    for_clock_triples(|a, b, _| {
        // a ∨ (a ∧ b) = a
        let mut m = a.clone();
        m.meet(&b);
        assert_eq!(a.joined(&m), a);
        // a ∧ (a ∨ b) = a
        let mut n = a.clone();
        n.meet(&a.joined(&b));
        assert_eq!(n, a);
    });
}

#[test]
fn le_is_reflexive_and_antisymmetric() {
    for_clock_triples(|a, b, _| {
        assert!(a.le(&a));
        if a.le(&b) && b.le(&a) {
            assert_eq!(a, b);
        }
    });
}

#[test]
fn le_is_transitive() {
    for_clock_triples(|a, b, c| {
        let j1 = a.joined(&b);
        let j2 = j1.joined(&c);
        // a ≤ a∨b ≤ (a∨b)∨c by construction; check the chain composes.
        assert!(a.le(&j1));
        assert!(j1.le(&j2));
        assert!(a.le(&j2));
    });
}

#[test]
fn causal_cmp_is_consistent_with_le() {
    for_clock_triples(|a, b, _| match a.causal_cmp(&b) {
        CausalOrd::Equal => assert!(a.le(&b) && b.le(&a)),
        CausalOrd::Before => assert!(a.le(&b) && !b.le(&a)),
        CausalOrd::After => assert!(b.le(&a) && !a.le(&b)),
        CausalOrd::Concurrent => assert!(!a.le(&b) && !b.le(&a)),
    });
}

#[test]
fn tick_strictly_increases() {
    let mut rng = Rng(0x71c4_0000);
    for case in 0..CASES {
        let a = rng.clock();
        let t = case % WIDTH;
        let mut ticked = a.clone();
        ticked.tick(t);
        assert!(a.lt(&ticked));
        assert_eq!(a.causal_cmp(&ticked), CausalOrd::Before);
    }
}

#[test]
fn total_is_monotone_under_join() {
    for_clock_triples(|a, b, _| {
        let j = a.joined(&b);
        assert!(j.total() >= a.total());
        assert!(j.total() >= b.total());
        assert!(j.total() <= a.total() + b.total());
    });
}
