//! Vector clocks for happens-before computation.
//!
//! A [`VectorClock`] summarises a set of events in a concurrent execution:
//! component `t` records how many events of thread `t` are in the set. When
//! every component of clock `a` is less than or equal to the corresponding
//! component of clock `b`, every event summarised by `a` is also summarised
//! by `b` — the events of `a` *happen before* (or equal) those of `b`.
//!
//! The systematic-concurrency-testing engines in this workspace use vector
//! clocks in two roles:
//!
//! * the happens-before engine (`lazylocks-hbr`) attaches to each event a
//!   clock describing its causal past, which doubles as a canonical
//!   representation of the partial order;
//! * dynamic partial-order reduction (the `lazylocks` core crate) uses clocks
//!   to decide whether two dependent events are already ordered and therefore
//!   do not warrant a backtracking point.
//!
//! Clocks here are *bounded*: the thread count of a guest program is fixed
//! at construction. Clocks over at most [`INLINE_WIDTH`] threads — every
//! program in the benchmark corpus — are stored inline and never touch the
//! heap; wider clocks spill to a `Vec<u32>`. All lattice operations are
//! O(#threads) and in place.

mod vector_clock;

pub use vector_clock::{CausalOrd, VectorClock, INLINE_WIDTH};
