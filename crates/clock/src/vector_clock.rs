//! The [`VectorClock`] type and its lattice operations.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Result of comparing two vector clocks under the causal (component-wise)
/// partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalOrd {
    /// Every component is equal.
    Equal,
    /// Strictly less than in at least one component, never greater.
    Before,
    /// Strictly greater in at least one component, never less.
    After,
    /// Incomparable: greater in some component and less in another.
    Concurrent,
}

impl CausalOrd {
    /// `true` for [`CausalOrd::Before`] and [`CausalOrd::Equal`].
    #[inline]
    pub fn is_before_or_equal(self) -> bool {
        matches!(self, CausalOrd::Before | CausalOrd::Equal)
    }

    /// `true` for [`CausalOrd::Concurrent`].
    #[inline]
    pub fn is_concurrent(self) -> bool {
        matches!(self, CausalOrd::Concurrent)
    }
}

/// Widths up to this many threads are stored inline (no heap allocation).
/// Covers the entire benchmark corpus; wider programs spill to a `Vec`.
pub const INLINE_WIDTH: usize = 8;

/// Storage: clocks of width ≤ [`INLINE_WIDTH`] live entirely on the stack
/// (the common case — exploration engines clone clocks on every step);
/// wider clocks fall back to a heap vector. The representation is a pure
/// function of the width, so two clocks of equal width always share a
/// variant and the unused tail of an inline array stays zero.
#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        counts: [u32; INLINE_WIDTH],
    },
    Heap(Vec<u32>),
}

/// A fixed-width vector clock: one `u32` counter per thread of the guest
/// program.
///
/// The component for thread `t` counts how many of `t`'s events are in the
/// causal past described by this clock. The zero clock describes the empty
/// past.
///
/// Clocks of width ≤ [`INLINE_WIDTH`] are allocation-free: construction,
/// `Clone` and every lattice operation touch only the stack. This is what
/// keeps the exploration hot loop (which snapshots clock state at every
/// scheduling point) off the allocator for typical programs.
///
/// ```
/// use lazylocks_clock::{CausalOrd, VectorClock};
///
/// let mut a = VectorClock::new(3);
/// let mut b = VectorClock::new(3);
/// a.tick(0);             // a = [1, 0, 0]
/// b.tick(1);             // b = [0, 1, 0]
/// assert_eq!(a.causal_cmp(&b), CausalOrd::Concurrent);
///
/// b.join(&a);            // b = [1, 1, 0]
/// assert_eq!(a.causal_cmp(&b), CausalOrd::Before);
/// ```
#[derive(Clone)]
pub struct VectorClock {
    repr: Repr,
}

impl Default for VectorClock {
    fn default() -> Self {
        VectorClock::new(0)
    }
}

impl VectorClock {
    /// The zero clock over `width` threads.
    pub fn new(width: usize) -> Self {
        let repr = if width <= INLINE_WIDTH {
            Repr::Inline {
                len: width as u8,
                counts: [0; INLINE_WIDTH],
            }
        } else {
            Repr::Heap(vec![0; width])
        };
        VectorClock { repr }
    }

    /// Builds a clock directly from per-thread counters.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        if counts.len() <= INLINE_WIDTH {
            let mut inline = [0; INLINE_WIDTH];
            inline[..counts.len()].copy_from_slice(&counts);
            VectorClock {
                repr: Repr::Inline {
                    len: counts.len() as u8,
                    counts: inline,
                },
            }
        } else {
            VectorClock {
                repr: Repr::Heap(counts),
            }
        }
    }

    /// Number of threads this clock covers.
    #[inline]
    pub fn width(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.counts().iter().all(|&c| c == 0)
    }

    /// The component for `thread`.
    ///
    /// # Panics
    /// Panics if `thread >= self.width()`.
    #[inline]
    pub fn get(&self, thread: usize) -> u32 {
        self.counts()[thread]
    }

    /// Sets the component for `thread`.
    #[inline]
    pub fn set(&mut self, thread: usize, value: u32) {
        self.counts_mut()[thread] = value;
    }

    /// Increments the component for `thread` and returns the new value.
    #[inline]
    pub fn tick(&mut self, thread: usize) -> u32 {
        let c = &mut self.counts_mut()[thread];
        *c += 1;
        *c
    }

    /// Component-wise maximum: after the call, `self` describes the union of
    /// both causal pasts. In place, allocation-free.
    #[inline]
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.width(), other.width(), "clock width mismatch");
        for (a, b) in self.counts_mut().iter_mut().zip(other.counts().iter()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Returns the component-wise maximum without mutating either operand.
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Overwrites `self` with the join `a ⊔ b`, reusing `self`'s storage —
    /// the allocation-free replacement for `*self = a.joined(b)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the three widths disagree.
    pub fn join_from(&mut self, a: &VectorClock, b: &VectorClock) {
        self.assign(a);
        self.join(b);
    }

    /// Overwrites `self` with `other`'s components, reusing `self`'s
    /// storage — the allocation-free replacement for `*self = other.clone()`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the widths differ.
    #[inline]
    pub fn assign(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.width(), other.width(), "clock width mismatch");
        self.counts_mut().copy_from_slice(other.counts());
    }

    /// Component-wise minimum (meet of the lattice).
    pub fn meet(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.width(), other.width(), "clock width mismatch");
        for (a, b) in self.counts_mut().iter_mut().zip(other.counts().iter()) {
            if *b < *a {
                *a = *b;
            }
        }
    }

    /// `true` iff `self[t] <= other[t]` for every thread `t` — i.e. the
    /// events summarised by `self` are a subset of those summarised by
    /// `other`.
    #[inline]
    pub fn le(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.width(), other.width(), "clock width mismatch");
        self.counts()
            .iter()
            .zip(other.counts().iter())
            .all(|(a, b)| a <= b)
    }

    /// `true` iff `self.le(other)` and the clocks differ.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.le(other) && self.counts() != other.counts()
    }

    /// `true` iff the clocks are incomparable.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Full comparison under the causal partial order.
    pub fn causal_cmp(&self, other: &VectorClock) -> CausalOrd {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => CausalOrd::Equal,
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        }
    }

    /// Iterator over `(thread, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.counts().iter().copied().enumerate()
    }

    /// The raw per-thread counters.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        match &self.repr {
            Repr::Inline { len, counts } => &counts[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    #[inline]
    fn counts_mut(&mut self) -> &mut [u32] {
        match &mut self.repr {
            Repr::Inline { len, counts } => &mut counts[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// `true` if the clock lives entirely on the stack (width ≤
    /// [`INLINE_WIDTH`]).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Sum of all components: the number of events in the causal past
    /// (counted with multiplicity per thread).
    pub fn total(&self) -> u64 {
        self.counts().iter().map(|&c| c as u64).sum()
    }

    /// Resets every component to zero, keeping the width.
    pub fn clear(&mut self) {
        for c in self.counts_mut() {
            *c = 0;
        }
    }

    /// Feeds the clock into a caller-supplied byte sink; used by the
    /// fingerprinting code in `lazylocks-hbr` to serialise clocks
    /// canonically (little-endian components in thread order).
    pub fn write_bytes(&self, out: &mut impl FnMut(&[u8])) {
        for c in self.counts() {
            out(&c.to_le_bytes());
        }
    }
}

// Identity is defined over the visible counters only, so it cannot depend
// on the storage variant. (The variant is a function of the width anyway;
// these impls keep that invariant out of the correctness argument.)
impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.counts() == other.counts()
    }
}

impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.counts().hash(state);
    }
}

impl PartialOrd for VectorClock {
    /// The causal partial order. `None` means the clocks are concurrent.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.causal_cmp(other) {
            CausalOrd::Equal => Some(Ordering::Equal),
            CausalOrd::Before => Some(Ordering::Less),
            CausalOrd::After => Some(Ordering::Greater),
            CausalOrd::Concurrent => None,
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.counts())
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.counts().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(counts: &[u32]) -> VectorClock {
        VectorClock::from_counts(counts.to_vec())
    }

    #[test]
    fn zero_clock_is_zero() {
        let c = VectorClock::new(4);
        assert!(c.is_zero());
        assert_eq!(c.width(), 4);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn tick_increments_only_own_component() {
        let mut c = VectorClock::new(3);
        assert_eq!(c.tick(1), 1);
        assert_eq!(c.tick(1), 2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = vc(&[3, 0, 5]);
        let b = vc(&[1, 4, 5]);
        a.join(&b);
        assert_eq!(a, vc(&[3, 4, 5]));
    }

    #[test]
    fn meet_is_componentwise_min() {
        let mut a = vc(&[3, 0, 5]);
        let b = vc(&[1, 4, 5]);
        a.meet(&b);
        assert_eq!(a, vc(&[1, 0, 5]));
    }

    #[test]
    fn assign_copies_in_place() {
        let mut a = vc(&[3, 0, 5]);
        a.assign(&vc(&[1, 4, 9]));
        assert_eq!(a, vc(&[1, 4, 9]));
    }

    #[test]
    fn join_from_is_out_of_place_join() {
        let mut out = VectorClock::new(3);
        let a = vc(&[3, 0, 5]);
        let b = vc(&[1, 4, 5]);
        out.join_from(&a, &b);
        assert_eq!(out, a.joined(&b));
    }

    #[test]
    fn causal_cmp_all_cases() {
        let a = vc(&[1, 2]);
        assert_eq!(a.causal_cmp(&vc(&[1, 2])), CausalOrd::Equal);
        assert_eq!(a.causal_cmp(&vc(&[2, 2])), CausalOrd::Before);
        assert_eq!(a.causal_cmp(&vc(&[0, 2])), CausalOrd::After);
        assert_eq!(a.causal_cmp(&vc(&[2, 1])), CausalOrd::Concurrent);
    }

    #[test]
    fn le_lt_concurrent_agree_with_causal_cmp() {
        let a = vc(&[1, 2]);
        let b = vc(&[2, 2]);
        assert!(a.le(&b));
        assert!(a.lt(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent(&b));
        let c = vc(&[0, 3]);
        assert!(a.concurrent(&c));
    }

    #[test]
    fn partial_ord_matches_causal_order() {
        assert!(vc(&[1, 0]) < vc(&[1, 1]));
        assert!(vc(&[1, 1]) > vc(&[1, 0]));
        assert_eq!(vc(&[1, 0]).partial_cmp(&vc(&[0, 1])), None);
        assert_eq!(vc(&[2, 2]).partial_cmp(&vc(&[2, 2])), Some(Ordering::Equal));
    }

    #[test]
    fn joined_does_not_mutate() {
        let a = vc(&[1, 0]);
        let b = vc(&[0, 1]);
        let j = a.joined(&b);
        assert_eq!(a, vc(&[1, 0]));
        assert_eq!(j, vc(&[1, 1]));
    }

    #[test]
    fn display_and_debug_render() {
        let a = vc(&[1, 0, 7]);
        assert_eq!(format!("{a}"), "⟨1,0,7⟩");
        assert_eq!(format!("{a:?}"), "VC[1, 0, 7]");
    }

    #[test]
    fn clear_resets_components() {
        let mut a = vc(&[4, 5]);
        a.clear();
        assert!(a.is_zero());
        assert_eq!(a.width(), 2);
    }

    #[test]
    fn write_bytes_is_little_endian_in_thread_order() {
        let a = vc(&[1, 258]);
        let mut bytes = Vec::new();
        a.write_bytes(&mut |chunk| bytes.extend_from_slice(chunk));
        assert_eq!(bytes, vec![1, 0, 0, 0, 2, 1, 0, 0]);
    }

    #[test]
    fn storage_variant_follows_width() {
        assert!(VectorClock::new(INLINE_WIDTH).is_inline());
        assert!(!VectorClock::new(INLINE_WIDTH + 1).is_inline());
        assert!(vc(&[0; INLINE_WIDTH]).is_inline());
        assert!(!vc(&[0; INLINE_WIDTH + 1]).is_inline());
    }

    #[test]
    fn operations_work_across_the_spill_boundary() {
        for width in [INLINE_WIDTH - 1, INLINE_WIDTH, INLINE_WIDTH + 1] {
            let mut a = VectorClock::new(width);
            let mut b = VectorClock::new(width);
            a.tick(0);
            b.tick(width - 1);
            let j = a.joined(&b);
            assert_eq!(j.get(0), 1);
            assert_eq!(j.get(width - 1), 1);
            assert_eq!(j.total(), 2);
            assert!(a.concurrent(&b));
        }
    }
}
