//! The [`VectorClock`] type and its lattice operations.

use std::cmp::Ordering;
use std::fmt;

/// Result of comparing two vector clocks under the causal (component-wise)
/// partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalOrd {
    /// Every component is equal.
    Equal,
    /// Strictly less than in at least one component, never greater.
    Before,
    /// Strictly greater in at least one component, never less.
    After,
    /// Incomparable: greater in some component and less in another.
    Concurrent,
}

impl CausalOrd {
    /// `true` for [`CausalOrd::Before`] and [`CausalOrd::Equal`].
    #[inline]
    pub fn is_before_or_equal(self) -> bool {
        matches!(self, CausalOrd::Before | CausalOrd::Equal)
    }

    /// `true` for [`CausalOrd::Concurrent`].
    #[inline]
    pub fn is_concurrent(self) -> bool {
        matches!(self, CausalOrd::Concurrent)
    }
}

/// A fixed-width vector clock: one `u32` counter per thread of the guest
/// program.
///
/// The component for thread `t` counts how many of `t`'s events are in the
/// causal past described by this clock. The zero clock describes the empty
/// past.
///
/// ```
/// use lazylocks_clock::{CausalOrd, VectorClock};
///
/// let mut a = VectorClock::new(3);
/// let mut b = VectorClock::new(3);
/// a.tick(0);             // a = [1, 0, 0]
/// b.tick(1);             // b = [0, 1, 0]
/// assert_eq!(a.causal_cmp(&b), CausalOrd::Concurrent);
///
/// b.join(&a);            // b = [1, 1, 0]
/// assert_eq!(a.causal_cmp(&b), CausalOrd::Before);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    counts: Vec<u32>,
}

impl VectorClock {
    /// The zero clock over `width` threads.
    pub fn new(width: usize) -> Self {
        VectorClock {
            counts: vec![0; width],
        }
    }

    /// Builds a clock directly from per-thread counters.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        VectorClock { counts }
    }

    /// Number of threads this clock covers.
    #[inline]
    pub fn width(&self) -> usize {
        self.counts.len()
    }

    /// `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The component for `thread`.
    ///
    /// # Panics
    /// Panics if `thread >= self.width()`.
    #[inline]
    pub fn get(&self, thread: usize) -> u32 {
        self.counts[thread]
    }

    /// Sets the component for `thread`.
    #[inline]
    pub fn set(&mut self, thread: usize, value: u32) {
        self.counts[thread] = value;
    }

    /// Increments the component for `thread` and returns the new value.
    #[inline]
    pub fn tick(&mut self, thread: usize) -> u32 {
        self.counts[thread] += 1;
        self.counts[thread]
    }

    /// Component-wise maximum: after the call, `self` describes the union of
    /// both causal pasts.
    #[inline]
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.width(), other.width(), "clock width mismatch");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Returns the component-wise maximum without mutating either operand.
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Component-wise minimum (meet of the lattice).
    pub fn meet(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.width(), other.width(), "clock width mismatch");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            if *b < *a {
                *a = *b;
            }
        }
    }

    /// `true` iff `self[t] <= other[t]` for every thread `t` — i.e. the
    /// events summarised by `self` are a subset of those summarised by
    /// `other`.
    #[inline]
    pub fn le(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.width(), other.width(), "clock width mismatch");
        self.counts
            .iter()
            .zip(other.counts.iter())
            .all(|(a, b)| a <= b)
    }

    /// `true` iff `self.le(other)` and the clocks differ.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.le(other) && self.counts != other.counts
    }

    /// `true` iff the clocks are incomparable.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Full comparison under the causal partial order.
    pub fn causal_cmp(&self, other: &VectorClock) -> CausalOrd {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => CausalOrd::Equal,
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        }
    }

    /// Iterator over `(thread, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.counts.iter().copied().enumerate()
    }

    /// The raw per-thread counters.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Sum of all components: the number of events in the causal past
    /// (counted with multiplicity per thread).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Resets every component to zero, keeping the width.
    pub fn clear(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
    }

    /// Feeds the clock into a caller-supplied byte sink; used by the
    /// fingerprinting code in `lazylocks-hbr` to serialise clocks
    /// canonically (little-endian components in thread order).
    pub fn write_bytes(&self, out: &mut impl FnMut(&[u8])) {
        for c in &self.counts {
            out(&c.to_le_bytes());
        }
    }
}

impl PartialOrd for VectorClock {
    /// The causal partial order. `None` means the clocks are concurrent.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.causal_cmp(other) {
            CausalOrd::Equal => Some(Ordering::Equal),
            CausalOrd::Before => Some(Ordering::Less),
            CausalOrd::After => Some(Ordering::Greater),
            CausalOrd::Concurrent => None,
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.counts)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(counts: &[u32]) -> VectorClock {
        VectorClock::from_counts(counts.to_vec())
    }

    #[test]
    fn zero_clock_is_zero() {
        let c = VectorClock::new(4);
        assert!(c.is_zero());
        assert_eq!(c.width(), 4);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn tick_increments_only_own_component() {
        let mut c = VectorClock::new(3);
        assert_eq!(c.tick(1), 1);
        assert_eq!(c.tick(1), 2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = vc(&[3, 0, 5]);
        let b = vc(&[1, 4, 5]);
        a.join(&b);
        assert_eq!(a, vc(&[3, 4, 5]));
    }

    #[test]
    fn meet_is_componentwise_min() {
        let mut a = vc(&[3, 0, 5]);
        let b = vc(&[1, 4, 5]);
        a.meet(&b);
        assert_eq!(a, vc(&[1, 0, 5]));
    }

    #[test]
    fn causal_cmp_all_cases() {
        let a = vc(&[1, 2]);
        assert_eq!(a.causal_cmp(&vc(&[1, 2])), CausalOrd::Equal);
        assert_eq!(a.causal_cmp(&vc(&[2, 2])), CausalOrd::Before);
        assert_eq!(a.causal_cmp(&vc(&[0, 2])), CausalOrd::After);
        assert_eq!(a.causal_cmp(&vc(&[2, 1])), CausalOrd::Concurrent);
    }

    #[test]
    fn le_lt_concurrent_agree_with_causal_cmp() {
        let a = vc(&[1, 2]);
        let b = vc(&[2, 2]);
        assert!(a.le(&b));
        assert!(a.lt(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent(&b));
        let c = vc(&[0, 3]);
        assert!(a.concurrent(&c));
    }

    #[test]
    fn partial_ord_matches_causal_order() {
        assert!(vc(&[1, 0]) < vc(&[1, 1]));
        assert!(vc(&[1, 1]) > vc(&[1, 0]));
        assert_eq!(vc(&[1, 0]).partial_cmp(&vc(&[0, 1])), None);
        assert_eq!(vc(&[2, 2]).partial_cmp(&vc(&[2, 2])), Some(Ordering::Equal));
    }

    #[test]
    fn joined_does_not_mutate() {
        let a = vc(&[1, 0]);
        let b = vc(&[0, 1]);
        let j = a.joined(&b);
        assert_eq!(a, vc(&[1, 0]));
        assert_eq!(j, vc(&[1, 1]));
    }

    #[test]
    fn display_and_debug_render() {
        let a = vc(&[1, 0, 7]);
        assert_eq!(format!("{a}"), "⟨1,0,7⟩");
        assert_eq!(format!("{a:?}"), "VC[1, 0, 7]");
    }

    #[test]
    fn clear_resets_components() {
        let mut a = vc(&[4, 5]);
        a.clear();
        assert!(a.is_zero());
        assert_eq!(a.width(), 2);
    }

    #[test]
    fn write_bytes_is_little_endian_in_thread_order() {
        let a = vc(&[1, 258]);
        let mut bytes = Vec::new();
        a.write_bytes(&mut |chunk| bytes.extend_from_slice(chunk));
        assert_eq!(bytes, vec![1, 0, 0, 0, 2, 1, 0, 0]);
    }
}
