//! Immutable happens-before relations and their canonical forms.

use crate::builder::EventRecord;
use crate::foata::foata_layers;
use crate::linearize::Linearizations;
use crate::mode::HbMode;
use lazylocks_clock::VectorClock;
use lazylocks_model::VisibleKind;
use lazylocks_runtime::{Event, EventId, Fnv128};

/// A finished happens-before relation over one execution trace.
///
/// The relation is stored as the trace's events (in the schedule order that
/// produced them) with their vector clocks. All identity queries are
/// linearization-invariant: two `HbRelation`s over different schedules
/// compare as "the same relation" exactly when they are linearizations of
/// the same labelled partial order.
#[derive(Debug, Clone)]
pub struct HbRelation {
    mode: HbMode,
    n_threads: usize,
    records: Vec<EventRecord>,
}

impl HbRelation {
    pub(crate) fn from_parts(mode: HbMode, n_threads: usize, records: Vec<EventRecord>) -> Self {
        HbRelation {
            mode,
            n_threads,
            records,
        }
    }

    /// The mode the relation was computed under.
    pub fn mode(&self) -> HbMode {
        self.mode
    }

    /// Number of threads of the underlying program.
    pub fn thread_width(&self) -> usize {
        self.n_threads
    }

    /// Number of events in the relation.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the relation is over the empty trace.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The event records in the schedule order that produced the relation.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Linearization-invariant 128-bit identity of the relation (same
    /// digest as [`HbBuilder::prefix_fingerprint`] after pushing the whole
    /// trace).
    ///
    /// [`HbBuilder::prefix_fingerprint`]: crate::HbBuilder::prefix_fingerprint
    pub fn fingerprint(&self) -> u128 {
        let mut xor_acc: u128 = 0;
        let mut sum_acc: u128 = 0;
        for r in &self.records {
            xor_acc ^= r.hash;
            sum_acc = sum_acc.wrapping_add(r.hash);
        }
        let mut h = Fnv128::new();
        h.write(&xor_acc.to_le_bytes());
        h.write(&sum_acc.to_le_bytes());
        h.write_u64(self.records.len() as u64);
        h.finish()
    }

    /// The exact canonical form: per-thread event sequences with clocks,
    /// independent of interleaving order. Collision-free (unlike the
    /// fingerprint) and `Eq + Hash`; the test suite uses it to validate
    /// fingerprint equality.
    pub fn canonical(&self) -> CanonicalHb {
        let mut per_thread: Vec<Vec<(VisibleKind, u32, VectorClock)>> =
            vec![Vec::new(); self.n_threads];
        for r in &self.records {
            per_thread[r.event.thread().index()].push((r.event.kind, r.event.pc, r.clock.clone()));
        }
        CanonicalHb { per_thread }
    }

    /// `true` iff the event at trace index `i` happens-before (or equals)
    /// the event at trace index `j`.
    ///
    /// Uses the standard vector-clock criterion: `e ≤ f` in the partial
    /// order iff `clock(f)[thread(e)] ≥ clock(e)[thread(e)]`.
    pub fn happens_before_or_equal(&self, i: usize, j: usize) -> bool {
        let (ri, rj) = (&self.records[i], &self.records[j]);
        let t = ri.event.thread().index();
        rj.clock.get(t) >= ri.clock.get(t)
    }

    /// `true` iff event `i` strictly happens-before event `j`.
    pub fn happens_before(&self, i: usize, j: usize) -> bool {
        i != j && self.happens_before_or_equal(i, j)
    }

    /// `true` iff events `i` and `j` are unordered by the relation.
    pub fn concurrent(&self, i: usize, j: usize) -> bool {
        i != j && !self.happens_before_or_equal(i, j) && !self.happens_before_or_equal(j, i)
    }

    /// Counts the unordered pairs — a size measure of how much freedom the
    /// relation leaves a partial-order reduction.
    pub fn concurrent_pair_count(&self) -> usize {
        let n = self.records.len();
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if self.concurrent(i, j) {
                    count += 1;
                }
            }
        }
        count
    }

    /// The Foata normal form: the canonical layered decomposition of the
    /// partial order. Layer `k` holds the events whose longest chain of
    /// predecessors has length `k`, sorted by event id. Two relations are
    /// equal iff their Foata forms are equal — an independent canonical
    /// representation used to cross-validate [`canonical`](Self::canonical)
    /// in the test suite.
    pub fn foata_normal_form(&self) -> Vec<Vec<Event>> {
        foata_layers(self)
    }

    /// Enumerates the linearizations of the relation (all total orders
    /// compatible with it), up to `limit`. See [`Linearizations`].
    pub fn linearizations(&self, limit: usize) -> Linearizations {
        Linearizations::new(self, limit)
    }

    /// Looks up a record by event identity.
    pub fn record_for(&self, id: EventId) -> Option<&EventRecord> {
        self.records.iter().find(|r| r.event.id == id)
    }
}

/// Exact canonical representation of a happens-before relation: for each
/// thread, its events (kind, pc) with their clocks, in program order.
///
/// Because per-thread order is fixed and every event's clock encodes its
/// full causal past, two traces have equal `CanonicalHb` iff they are
/// linearizations of the same labelled partial order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalHb {
    per_thread: Vec<Vec<(VisibleKind, u32, VectorClock)>>,
}

impl CanonicalHb {
    /// Per-thread sequences of `(kind, pc, clock)`.
    pub fn per_thread(&self) -> &[Vec<(VisibleKind, u32, VectorClock)>] {
        &self.per_thread
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.per_thread.iter().map(|v| v.len()).sum()
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HbBuilder;
    use lazylocks_model::{MutexId, ThreadId, VarId};

    fn ev(thread: u16, ordinal: u32, kind: VisibleKind) -> Event {
        Event {
            id: EventId {
                thread: ThreadId(thread),
                ordinal,
            },
            kind,
            pc: ordinal,
        }
    }

    fn relation(mode: HbMode, trace: &[Event]) -> HbRelation {
        let mut b = HbBuilder::new(mode, 3, 3, 2);
        for &e in trace {
            b.push(e);
        }
        b.finish()
    }

    #[test]
    fn happens_before_includes_program_order_and_transitivity() {
        let x = VarId(0);
        let y = VarId(1);
        let trace = vec![
            ev(0, 0, VisibleKind::Write(x)), // 0
            ev(1, 0, VisibleKind::Read(x)),  // 1: after 0
            ev(1, 1, VisibleKind::Write(y)), // 2: after 1 (program order)
            ev(2, 0, VisibleKind::Read(y)),  // 3: after 2, hence after 0
        ];
        let r = relation(HbMode::Regular, &trace);
        assert!(r.happens_before(0, 1));
        assert!(r.happens_before(1, 2));
        assert!(r.happens_before(0, 3), "transitive edge 0→1→2→3");
        assert!(!r.happens_before(3, 0));
        assert!(!r.happens_before(0, 0), "strict relation is irreflexive");
        assert!(r.happens_before_or_equal(0, 0));
    }

    #[test]
    fn concurrent_pairs_counted() {
        let x = VarId(0);
        let z = VarId(2);
        let trace = vec![
            ev(0, 0, VisibleKind::Write(x)),
            ev(1, 0, VisibleKind::Write(z)),
        ];
        let r = relation(HbMode::Regular, &trace);
        assert!(r.concurrent(0, 1));
        assert_eq!(r.concurrent_pair_count(), 1);
    }

    #[test]
    fn fingerprint_equals_builder_prefix_fingerprint() {
        let x = VarId(0);
        let trace = vec![
            ev(0, 0, VisibleKind::Write(x)),
            ev(1, 0, VisibleKind::Read(x)),
        ];
        let mut b = HbBuilder::new(HbMode::Regular, 3, 3, 2);
        for &e in &trace {
            b.push(e);
        }
        let fp = b.prefix_fingerprint();
        assert_eq!(fp, b.finish().fingerprint());
    }

    #[test]
    fn canonical_is_interleaving_invariant() {
        let x = VarId(0);
        let z = VarId(2);
        // Two independent writes: either interleaving, same relation.
        let ab = relation(
            HbMode::Regular,
            &[
                ev(0, 0, VisibleKind::Write(x)),
                ev(1, 0, VisibleKind::Write(z)),
            ],
        );
        let ba = relation(
            HbMode::Regular,
            &[
                ev(1, 0, VisibleKind::Write(z)),
                ev(0, 0, VisibleKind::Write(x)),
            ],
        );
        assert_eq!(ab.canonical(), ba.canonical());
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        // Dependent accesses: interleaving order matters.
        let wr = relation(
            HbMode::Regular,
            &[
                ev(0, 0, VisibleKind::Write(x)),
                ev(1, 0, VisibleKind::Read(x)),
            ],
        );
        let rw = relation(
            HbMode::Regular,
            &[
                ev(1, 0, VisibleKind::Read(x)),
                ev(0, 0, VisibleKind::Write(x)),
            ],
        );
        assert_ne!(wr.canonical(), rw.canonical());
        assert_ne!(wr.fingerprint(), rw.fingerprint());
    }

    #[test]
    fn lazy_mode_identifies_lock_reorderings() {
        let m = MutexId(0);
        let t1 = [
            ev(0, 0, VisibleKind::Lock(m)),
            ev(0, 1, VisibleKind::Unlock(m)),
        ];
        let t2 = [
            ev(1, 0, VisibleKind::Lock(m)),
            ev(1, 1, VisibleKind::Unlock(m)),
        ];
        let order_a = relation(HbMode::Lazy, &[t1[0], t1[1], t2[0], t2[1]]);
        let order_b = relation(HbMode::Lazy, &[t2[0], t2[1], t1[0], t1[1]]);
        assert_eq!(order_a.canonical(), order_b.canonical());
        assert_eq!(order_a.fingerprint(), order_b.fingerprint());

        let reg_a = relation(HbMode::Regular, &[t1[0], t1[1], t2[0], t2[1]]);
        let reg_b = relation(HbMode::Regular, &[t2[0], t2[1], t1[0], t1[1]]);
        assert_ne!(reg_a.canonical(), reg_b.canonical());
        assert_ne!(reg_a.fingerprint(), reg_b.fingerprint());
    }

    #[test]
    fn record_lookup_by_event_id() {
        let x = VarId(0);
        let trace = vec![
            ev(0, 0, VisibleKind::Write(x)),
            ev(1, 0, VisibleKind::Read(x)),
        ];
        let r = relation(HbMode::Regular, &trace);
        let id = EventId {
            thread: ThreadId(1),
            ordinal: 0,
        };
        assert_eq!(r.record_for(id).unwrap().event.kind, VisibleKind::Read(x));
        let missing = EventId {
            thread: ThreadId(2),
            ordinal: 0,
        };
        assert!(r.record_for(missing).is_none());
    }

    #[test]
    fn empty_relation_behaves() {
        let r = relation(HbMode::Regular, &[]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.concurrent_pair_count(), 0);
        assert!(r.canonical().is_empty());
        // Two empty relations agree.
        assert_eq!(r.fingerprint(), relation(HbMode::Lazy, &[]).fingerprint());
    }
}
