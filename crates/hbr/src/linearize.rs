//! Linearization enumeration and replay-based feasibility checks.
//!
//! These utilities power the machine-checked versions of the paper's
//! theorems:
//!
//! * **Theorem 2.1** — every linearization of a (regular) HBR is a feasible
//!   schedule and reaches the same state: enumerate with
//!   [`HbRelation::linearizations`], replay each with [`replay_events`],
//!   compare traces and final states.
//! * **Theorem 2.2** — not every linearization of a *lazy* HBR is feasible
//!   (a lock-holding interleaving may block), but all *feasible* ones reach
//!   the same state: the same enumeration, tolerating infeasible
//!   linearizations.
//!
//! [`HbRelation::linearizations`]: crate::HbRelation::linearizations

use crate::relation::HbRelation;
use lazylocks_model::{Program, ThreadId};
use lazylocks_runtime::{run_schedule, Event, InfeasibleSchedule, RunResult};

/// Eagerly enumerated linearizations of a happens-before relation.
///
/// Enumeration is exponential in general; `limit` caps the number of
/// linearizations produced, and [`complete`](Linearizations::complete)
/// reports whether the cap was reached.
#[derive(Debug, Clone)]
pub struct Linearizations {
    orders: Vec<Vec<Event>>,
    complete: bool,
}

/// Alias kept for discoverability: the result of
/// [`HbRelation::linearizations`].
///
/// [`HbRelation::linearizations`]: crate::HbRelation::linearizations
pub type LinearizationEnumeration = Linearizations;

impl Linearizations {
    pub(crate) fn new(relation: &HbRelation, limit: usize) -> Self {
        let n_threads = relation.thread_width();
        // Per-thread record indices in ordinal order; events arrive in
        // schedule order, so per-thread subsequences are already sorted.
        let mut per_thread: Vec<Vec<usize>> = vec![Vec::new(); n_threads];
        for (i, r) in relation.records().iter().enumerate() {
            per_thread[r.event.thread().index()].push(i);
        }

        let mut enumerator = Enumerator {
            relation,
            per_thread,
            frontier: vec![0; n_threads],
            emitted: vec![0u32; n_threads],
            current: Vec::with_capacity(relation.len()),
            orders: Vec::new(),
            limit,
            complete: true,
        };
        enumerator.run();
        Linearizations {
            orders: enumerator.orders,
            complete: enumerator.complete,
        }
    }

    /// The enumerated linearizations, each a total order of the relation's
    /// events.
    pub fn orders(&self) -> &[Vec<Event>] {
        &self.orders
    }

    /// `true` if every linearization was produced (the limit was not hit).
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Number of linearizations produced.
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// `true` if no linearizations were produced (only for the empty
    /// relation with limit 0).
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }
}

struct Enumerator<'r> {
    relation: &'r HbRelation,
    per_thread: Vec<Vec<usize>>,
    /// Next unemitted position in each thread's sequence.
    frontier: Vec<usize>,
    /// Events emitted per thread so far.
    emitted: Vec<u32>,
    current: Vec<Event>,
    orders: Vec<Vec<Event>>,
    limit: usize,
    complete: bool,
}

impl Enumerator<'_> {
    fn run(&mut self) {
        if self.relation.is_empty() {
            if self.limit > 0 {
                self.orders.push(Vec::new());
            } else {
                self.complete = false;
            }
            return;
        }
        self.dfs();
    }

    /// `true` if thread `t`'s frontier event has all predecessors emitted.
    fn ready(&self, t: usize) -> Option<usize> {
        let pos = self.frontier[t];
        let &rec_ix = self.per_thread[t].get(pos)?;
        let clock = &self.relation.records()[rec_ix].clock;
        for q in 0..self.emitted.len() {
            let need = if q == t {
                clock.get(q).saturating_sub(1)
            } else {
                clock.get(q)
            };
            if self.emitted[q] < need {
                return None;
            }
        }
        Some(rec_ix)
    }

    fn dfs(&mut self) {
        if self.orders.len() >= self.limit {
            self.complete = false;
            return;
        }
        if self.current.len() == self.relation.len() {
            self.orders.push(self.current.clone());
            return;
        }
        for t in 0..self.per_thread.len() {
            if let Some(rec_ix) = self.ready(t) {
                let event = self.relation.records()[rec_ix].event;
                self.frontier[t] += 1;
                self.emitted[t] += 1;
                self.current.push(event);
                self.dfs();
                self.current.pop();
                self.emitted[t] -= 1;
                self.frontier[t] -= 1;
                if self.orders.len() >= self.limit {
                    self.complete = false;
                    return;
                }
            }
        }
    }
}

/// Projects an event order to the thread-choice schedule that would produce
/// it.
pub fn linearization_schedule(events: &[Event]) -> Vec<ThreadId> {
    events.iter().map(|e| e.thread()).collect()
}

/// Replays the schedule induced by `events` on `program`.
///
/// Returns the run result if every step was enabled — the linearization is
/// *feasible* in the paper's sense — or the position at which it blocked.
/// Callers checking Theorem 2.1 should additionally compare
/// [`RunResult::trace`] against `events`: feasibility plus trace equality
/// means the linearization really re-executed the same events.
pub fn replay_events(program: &Program, events: &[Event]) -> Result<RunResult, InfeasibleSchedule> {
    run_schedule(program, &linearization_schedule(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HbBuilder;
    use crate::mode::HbMode;
    use lazylocks_model::{ProgramBuilder, VisibleKind};
    use lazylocks_runtime::RunStatus;

    /// Two threads, each: lock m; write own var; unlock m.
    fn locked_writers() -> Program {
        let mut b = ProgramBuilder::new("locked-writers");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        let m = b.mutex("m");
        b.thread("T1", |t| t.with_lock(m, |t| t.store(x, 1)));
        b.thread("T2", |t| t.with_lock(m, |t| t.store(y, 1)));
        b.build()
    }

    fn trace_of(program: &Program, schedule: &[u16]) -> Vec<Event> {
        let schedule: Vec<ThreadId> = schedule.iter().map(|&i| ThreadId(i)).collect();
        run_schedule(program, &schedule).unwrap().trace
    }

    #[test]
    fn enumerates_all_topological_orders_of_independent_writes() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(y, 1));
        let p = b.build();
        let trace = trace_of(&p, &[0, 1]);
        let rel = HbBuilder::from_trace(HbMode::Regular, &p, &trace);
        let lins = rel.linearizations(100);
        assert!(lins.complete());
        assert_eq!(lins.len(), 2, "two independent events → two orders");
    }

    #[test]
    fn dependent_events_admit_single_order() {
        let mut b = ProgramBuilder::new("p");
        let x = b.var("x", 0);
        b.thread("T1", |t| t.store(x, 1));
        b.thread("T2", |t| t.store(x, 2));
        let p = b.build();
        let trace = trace_of(&p, &[0, 1]);
        let rel = HbBuilder::from_trace(HbMode::Regular, &p, &trace);
        let lins = rel.linearizations(100);
        assert_eq!(lins.len(), 1, "write-write conflict pins the order");
        assert_eq!(lins.orders()[0], trace);
    }

    #[test]
    fn limit_caps_enumeration() {
        let mut b = ProgramBuilder::new("p");
        let vars: Vec<_> = (0..4).map(|i| b.var(format!("v{i}"), 0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            b.thread(format!("T{i}"), move |t| t.store(v, 1));
        }
        let p = b.build();
        let trace = trace_of(&p, &[0, 1, 2, 3]);
        let rel = HbBuilder::from_trace(HbMode::Regular, &p, &trace);
        // 4 independent events → 4! = 24 linearizations.
        let all = rel.linearizations(100);
        assert!(all.complete());
        assert_eq!(all.len(), 24);
        let capped = rel.linearizations(10);
        assert!(!capped.complete());
        assert_eq!(capped.len(), 10);
    }

    #[test]
    fn theorem_2_1_on_locked_writers() {
        // All linearizations of the regular HBR are feasible and reach the
        // same state.
        let p = locked_writers();
        let trace = trace_of(&p, &[0, 0, 0, 1, 1, 1]);
        let rel = HbBuilder::from_trace(HbMode::Regular, &p, &trace);
        let lins = rel.linearizations(10_000);
        assert!(lins.complete());
        assert!(!lins.is_empty());
        let reference = replay_events(&p, &trace).unwrap();
        for order in lins.orders() {
            let run = replay_events(&p, order).expect("Theorem 2.1: linearization feasible");
            assert_eq!(run.status, RunStatus::Completed);
            assert_eq!(run.trace, *order, "linearization re-executes its events");
            assert_eq!(
                run.state, reference.state,
                "Theorem 2.1: same state for every linearization"
            );
        }
    }

    #[test]
    fn lazy_relation_admits_infeasible_linearizations() {
        // Figure 1 phenomenon: the lazy HBR of a lock-protected trace has
        // linearizations that interleave the critical sections, which
        // cannot be executed.
        let p = locked_writers();
        let trace = trace_of(&p, &[0, 0, 0, 1, 1, 1]);
        let rel = HbBuilder::from_trace(HbMode::Lazy, &p, &trace);
        let lins = rel.linearizations(10_000);
        assert!(lins.complete());
        let mut feasible = 0usize;
        let mut infeasible = 0usize;
        let mut states = std::collections::HashSet::new();
        for order in lins.orders() {
            match replay_events(&p, order) {
                Ok(run) if run.trace == *order => {
                    feasible += 1;
                    states.insert(run.state);
                }
                _ => infeasible += 1,
            }
        }
        assert!(infeasible > 0, "lazy HBR must admit blocked linearizations");
        assert!(feasible >= 2, "both lock orders are feasible");
        assert_eq!(
            states.len(),
            1,
            "Theorem 2.2: all feasible linearizations reach the same state"
        );
    }

    #[test]
    fn schedule_projection_is_thread_sequence() {
        let p = locked_writers();
        let trace = trace_of(&p, &[0, 0, 0, 1, 1, 1]);
        let schedule = linearization_schedule(&trace);
        assert_eq!(schedule.len(), 6);
        assert!(schedule[..3].iter().all(|&t| t == ThreadId(0)));
        assert!(schedule[3..].iter().all(|&t| t == ThreadId(1)));
    }

    #[test]
    fn empty_relation_has_one_empty_linearization() {
        let mut b = ProgramBuilder::new("p");
        b.thread("T", |_| {});
        let p = b.build();
        let rel = HbBuilder::from_trace(HbMode::Regular, &p, &[]);
        let lins = rel.linearizations(10);
        assert_eq!(lins.len(), 1);
        assert!(lins.orders()[0].is_empty());
        assert!(lins.complete());
    }

    #[test]
    fn lock_chain_orders_are_preserved() {
        // T1 lock/unlock then T2 lock/unlock under the regular HBR: the
        // only linearizations keep T1's unlock before T2's lock.
        let p = locked_writers();
        let trace = trace_of(&p, &[0, 0, 0, 1, 1, 1]);
        let rel = HbBuilder::from_trace(HbMode::Regular, &p, &trace);
        for order in rel.linearizations(10_000).orders() {
            let unlock_t1 = order
                .iter()
                .position(|e| e.thread() == ThreadId(0) && matches!(e.kind, VisibleKind::Unlock(_)))
                .unwrap();
            let lock_t2 = order
                .iter()
                .position(|e| e.thread() == ThreadId(1) && matches!(e.kind, VisibleKind::Lock(_)))
                .unwrap();
            assert!(unlock_t1 < lock_t2);
        }
    }
}
