//! Happens-before relations for systematic concurrency testing.
//!
//! This crate implements the paper's central objects:
//!
//! * the **regular happens-before relation** (HBR): `e1` happens-before
//!   `e2` iff `e1` precedes `e2` in the schedule and (a) they are from the
//!   same thread, (b) they access the same variable *or mutex* with at
//!   least one access a modification, or (c) transitivity;
//! * the **lazy happens-before relation** (lazy HBR): clause (b) restricted
//!   to *non-mutex* variables — mutex-induced inter-thread edges are
//!   dropped ([`HbMode::Lazy`]);
//! * the **sync-only relation** ([`HbMode::SyncOnly`]): program order plus
//!   mutex edges only — the relation classical happens-before *data-race
//!   detectors* use.
//!
//! The relation over a trace is computed incrementally by [`HbBuilder`]
//! with one vector clock per event; the finished [`HbRelation`] supports:
//!
//! * canonical identity: [`HbRelation::fingerprint`] is equal for two
//!   traces iff they are linearizations of the same labelled partial order
//!   (up to 128-bit hash collisions; [`HbRelation::canonical`] is the exact
//!   form used to validate the fingerprints in tests);
//! * **prefix fingerprints** ([`HbBuilder::prefix_fingerprint`]): a
//!   linearization-invariant running digest, the key ingredient of HBR
//!   caching (Musuvathi & Qadeer) and the paper's lazy HBR caching;
//! * order queries ([`HbRelation::happens_before`],
//!   [`HbRelation::concurrent`]);
//! * the Foata normal form ([`HbRelation::foata_normal_form`]) as an
//!   independent canonical representation;
//! * enumeration of all linearizations ([`HbRelation::linearizations`]) and
//!   replay-based feasibility checks, which power the machine-checked
//!   versions of the paper's Theorems 2.1 and 2.2 in the test suite.

mod builder;
mod engine;
mod foata;
mod linearize;
mod mode;
mod relation;

pub use builder::{EventRecord, HbBuilder};
pub use engine::{event_record_hash, ClockEngine, PrefixAccumulator};
pub use foata::foata_layers;
pub use linearize::{
    linearization_schedule, replay_events, LinearizationEnumeration, Linearizations,
};
pub use mode::HbMode;
pub use relation::{CanonicalHb, HbRelation};
