//! The lean clock engine: happens-before vector-clock state without record
//! storage.
//!
//! Exploration engines snapshot the happens-before state at every scheduling
//! point (once per DFS node). Snapshotting a full [`HbBuilder`] would clone
//! the accumulated event records — O(depth) per node. [`ClockEngine`] holds
//! only the *live* clock state (one clock per thread, per variable
//! read/write site, per mutex), making snapshots O(program size) regardless
//! of depth. [`HbBuilder`](crate::HbBuilder) itself is a thin wrapper over
//! this engine that additionally retains records.

use crate::mode::HbMode;
use lazylocks_clock::VectorClock;
use lazylocks_model::VisibleKind;
use lazylocks_runtime::{Event, Fnv128};

/// Mode-aware happens-before clock state, updated event by event.
///
/// All clocks live in **one contiguous buffer**, laid out as
/// `[thread clocks | variable write clocks | variable read clocks | mutex
/// clocks]`. Exploration engines snapshot the engine once per DFS node, so
/// the clone cost is a single allocation over one cache-friendly slab
/// instead of four separate vectors.
#[derive(Debug, Clone)]
pub struct ClockEngine {
    mode: HbMode,
    n_threads: usize,
    n_vars: usize,
    /// `n_threads + 2 * n_vars + n_mutexes` clocks; see the layout above.
    clocks: Vec<VectorClock>,
}

impl ClockEngine {
    /// Creates an engine for a program shape.
    pub fn new(mode: HbMode, n_threads: usize, n_vars: usize, n_mutexes: usize) -> Self {
        ClockEngine {
            mode,
            n_threads,
            n_vars,
            clocks: vec![VectorClock::new(n_threads); n_threads + 2 * n_vars + n_mutexes],
        }
    }

    /// Creates an engine sized for `program`.
    pub fn for_program(mode: HbMode, program: &lazylocks_model::Program) -> Self {
        ClockEngine::new(
            mode,
            program.thread_count(),
            program.vars().len(),
            program.mutexes().len(),
        )
    }

    /// The happens-before mode.
    pub fn mode(&self) -> HbMode {
        self.mode
    }

    /// Number of threads the clocks range over.
    pub fn thread_width(&self) -> usize {
        self.n_threads
    }

    /// Applies the next event of the schedule and returns its clock (the
    /// event's causal past, inclusive) — a borrow of the thread's live
    /// clock; clone it only if it must outlive the next `apply`.
    ///
    /// Allocation-free: the thread clock is ticked and joined in place, and
    /// the per-site clocks are updated with in-place copies
    /// ([`VectorClock::assign`]) rather than clone round-trips.
    pub fn apply(&mut self, event: &Event) -> &VectorClock {
        let t = event.thread().index();
        debug_assert!(t < self.n_threads, "event from undeclared thread");
        debug_assert_eq!(
            event.id.ordinal as usize,
            self.clocks[t].get(t) as usize,
            "events of a thread must be applied in ordinal order"
        );

        // Thread clocks occupy the buffer's prefix, per-site clocks the
        // rest; splitting there hands out the two disjoint mutable views
        // the join/assign pairs below need.
        let (threads, sites) = self.clocks.split_at_mut(self.n_threads);
        let thread_clock = &mut threads[t];
        let write_at = |x: usize| x;
        let reads_at = |x: usize| self.n_vars + x;
        let mutex_at = |m: usize| 2 * self.n_vars + m;

        thread_clock.tick(t);
        match event.kind {
            VisibleKind::Read(x) => {
                if self.mode != HbMode::SyncOnly {
                    thread_clock.join(&sites[write_at(x.index())]);
                    sites[reads_at(x.index())].join(thread_clock);
                }
            }
            VisibleKind::Write(x) => {
                if self.mode != HbMode::SyncOnly {
                    thread_clock.join(&sites[write_at(x.index())]);
                    thread_clock.join(&sites[reads_at(x.index())]);
                    sites[write_at(x.index())].assign(thread_clock);
                    sites[reads_at(x.index())].clear();
                }
            }
            VisibleKind::Lock(m) | VisibleKind::Unlock(m) => {
                if self.mode != HbMode::Lazy {
                    thread_clock.join(&sites[mutex_at(m.index())]);
                    sites[mutex_at(m.index())].assign(thread_clock);
                }
            }
        }
        &self.clocks[t]
    }

    /// Clock of `thread`'s latest event (zero clock if none) — the causal
    /// past of whatever `thread` does next, as used by DPOR's
    /// "already-ordered" check.
    pub fn thread_clock(&self, thread: lazylocks_model::ThreadId) -> &VectorClock {
        &self.clocks[thread.index()]
    }

    /// Makes `self` an exact copy of `other` **in place**, reusing the
    /// clock buffer (and, for inline-width clocks — the whole corpus —
    /// performing zero allocations). Semantically identical to
    /// `*self = other.clone()`; the frame-pool path of the exploration
    /// engines.
    ///
    /// # Panics
    /// Panics (debug) when the two engines have different shapes; pools
    /// only ever recycle engines of the same program.
    pub fn assign_from(&mut self, other: &ClockEngine) {
        debug_assert_eq!(self.clocks.len(), other.clocks.len(), "shape mismatch");
        self.mode = other.mode;
        self.n_threads = other.n_threads;
        self.n_vars = other.n_vars;
        for (dst, src) in self.clocks.iter_mut().zip(&other.clocks) {
            dst.assign(src);
        }
    }

    /// Resets every clock to zero, keeping the shape — so one engine can
    /// fingerprint many traces without reallocating.
    pub fn reset(&mut self) {
        for c in self.clocks.iter_mut() {
            c.clear();
        }
    }

    /// Fingerprints the relation of a complete `trace` in one pass,
    /// resetting the engine first. Produces exactly the digest of
    /// [`HbBuilder::from_trace(mode, program, trace).fingerprint()`]
    /// (asserted by the test suite) without materialising any event
    /// records — the allocation-free leaf-processing path of the
    /// exploration engines.
    ///
    /// [`HbBuilder::from_trace(mode, program, trace).fingerprint()`]:
    ///     crate::HbBuilder::from_trace
    pub fn trace_fingerprint(&mut self, trace: &[Event]) -> u128 {
        self.reset();
        let mut acc = PrefixAccumulator::new();
        for e in trace {
            let clock = self.apply(e);
            acc.absorb(event_record_hash(e, clock));
        }
        acc.fingerprint()
    }
}

/// Digest of one event record `(thread, ordinal, pc, kind, clock)` — the
/// per-event ingredient of all trace fingerprints. Deterministic across
/// runs and platforms.
pub fn event_record_hash(event: &Event, clock: &VectorClock) -> u128 {
    let mut h = Fnv128::new();
    h.write(&event.id.thread.0.to_le_bytes());
    h.write_u32(event.id.ordinal);
    h.write_u32(event.pc);
    let (tag, target): (u8, u16) = match event.kind {
        VisibleKind::Read(v) => (0, v.0),
        VisibleKind::Write(v) => (1, v.0),
        VisibleKind::Lock(m) => (2, m.0),
        VisibleKind::Unlock(m) => (3, m.0),
    };
    h.write(&[tag]);
    h.write(&target.to_le_bytes());
    clock.write_bytes(&mut |bytes| h.write(bytes));
    h.finish()
}

/// Order-insensitive accumulator over event record hashes: the running
/// prefix fingerprint used by HBR caching. Two schedule prefixes that are
/// linearizations of the same partial order produce identical digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixAccumulator {
    xor_acc: u128,
    sum_acc: u128,
    len: u64,
}

impl PrefixAccumulator {
    /// Empty accumulator (zero events).
    pub fn new() -> Self {
        PrefixAccumulator::default()
    }

    /// Absorbs one event record hash.
    #[inline]
    pub fn absorb(&mut self, record_hash: u128) {
        self.xor_acc ^= record_hash;
        self.sum_acc = self.sum_acc.wrapping_add(record_hash);
        self.len += 1;
    }

    /// Number of events absorbed.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if nothing was absorbed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current digest.
    pub fn fingerprint(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write(&self.xor_acc.to_le_bytes());
        h.write(&self.sum_acc.to_le_bytes());
        h.write_u64(self.len);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{ThreadId, VarId};
    use lazylocks_runtime::EventId;

    fn ev(thread: u16, ordinal: u32, kind: VisibleKind) -> Event {
        Event {
            id: EventId {
                thread: ThreadId(thread),
                ordinal,
            },
            kind,
            pc: ordinal,
        }
    }

    #[test]
    fn engine_matches_builder_clocks() {
        use crate::builder::HbBuilder;
        let trace = vec![
            ev(0, 0, VisibleKind::Write(VarId(0))),
            ev(1, 0, VisibleKind::Read(VarId(0))),
            ev(1, 1, VisibleKind::Write(VarId(1))),
            ev(0, 1, VisibleKind::Read(VarId(1))),
        ];
        for mode in HbMode::ALL {
            let mut engine = ClockEngine::new(mode, 2, 2, 0);
            let mut builder = HbBuilder::new(mode, 2, 2, 0);
            for &e in &trace {
                let clock = engine.apply(&e).clone();
                let record = builder.push(e).clone();
                assert_eq!(clock, record.clock, "{mode:?}");
                assert_eq!(event_record_hash(&e, &clock), record.hash, "{mode:?}");
            }
        }
    }

    #[test]
    fn prefix_accumulator_matches_builder_fingerprint() {
        use crate::builder::HbBuilder;
        let trace = vec![
            ev(0, 0, VisibleKind::Write(VarId(0))),
            ev(1, 0, VisibleKind::Read(VarId(0))),
        ];
        let mut engine = ClockEngine::new(HbMode::Regular, 2, 2, 0);
        let mut acc = PrefixAccumulator::new();
        let mut builder = HbBuilder::new(HbMode::Regular, 2, 2, 0);
        assert_eq!(acc.fingerprint(), builder.prefix_fingerprint());
        for &e in &trace {
            let clock = engine.apply(&e).clone();
            acc.absorb(event_record_hash(&e, &clock));
            builder.push(e);
            assert_eq!(acc.fingerprint(), builder.prefix_fingerprint());
        }
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn accumulator_is_order_insensitive() {
        let h1 = 0xdead_beef_u128;
        let h2 = 0x1234_5678_u128;
        let mut a = PrefixAccumulator::new();
        a.absorb(h1);
        a.absorb(h2);
        let mut b = PrefixAccumulator::new();
        b.absorb(h2);
        b.absorb(h1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), PrefixAccumulator::new().fingerprint());
    }

    #[test]
    fn trace_fingerprint_matches_builder_and_resets() {
        use crate::builder::HbBuilder;
        let trace = vec![
            ev(0, 0, VisibleKind::Write(VarId(0))),
            ev(1, 0, VisibleKind::Read(VarId(0))),
            ev(1, 1, VisibleKind::Write(VarId(1))),
            ev(0, 1, VisibleKind::Read(VarId(1))),
        ];
        for mode in HbMode::ALL {
            let mut engine = ClockEngine::new(mode, 2, 2, 0);
            let expected = {
                let mut b = HbBuilder::new(mode, 2, 2, 0);
                for &e in &trace {
                    b.push(e);
                }
                b.finish().fingerprint()
            };
            assert_eq!(engine.trace_fingerprint(&trace), expected, "{mode:?}");
            // A second run on the same engine must reset cleanly.
            assert_eq!(engine.trace_fingerprint(&trace), expected, "{mode:?}");
            // And a different trace digests differently.
            assert_ne!(engine.trace_fingerprint(&trace[..2]), expected);
        }
    }

    #[test]
    fn assign_from_matches_clone() {
        let mut src = ClockEngine::new(HbMode::Regular, 2, 2, 1);
        src.apply(&ev(0, 0, VisibleKind::Write(VarId(0))));
        src.apply(&ev(1, 0, VisibleKind::Read(VarId(0))));
        let mut dst = ClockEngine::new(HbMode::Regular, 2, 2, 1);
        dst.apply(&ev(1, 0, VisibleKind::Write(VarId(1))));
        dst.assign_from(&src);
        for t in 0..2 {
            assert_eq!(dst.thread_clock(ThreadId(t)), src.thread_clock(ThreadId(t)));
        }
        // The copy is independent: advancing it leaves the source alone.
        dst.apply(&ev(0, 1, VisibleKind::Write(VarId(1))));
        assert_eq!(src.thread_clock(ThreadId(0)).total(), 1);
        assert_eq!(dst.thread_clock(ThreadId(0)).total(), 2);
    }

    #[test]
    fn engine_clone_is_independent_snapshot() {
        let mut e1 = ClockEngine::new(HbMode::Regular, 2, 1, 0);
        e1.apply(&ev(0, 0, VisibleKind::Write(VarId(0))));
        let snapshot = e1.clone();
        e1.apply(&ev(1, 0, VisibleKind::Read(VarId(0))));
        assert_eq!(snapshot.thread_clock(ThreadId(1)).total(), 0);
        assert_eq!(e1.thread_clock(ThreadId(1)).total(), 2);
    }
}
