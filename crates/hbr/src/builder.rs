//! Incremental construction of happens-before relations with vector clocks.

use crate::engine::{event_record_hash, ClockEngine, PrefixAccumulator};
use crate::mode::HbMode;
use crate::relation::HbRelation;
use lazylocks_clock::VectorClock;
use lazylocks_runtime::Event;

/// One event of the trace together with its happens-before vector clock.
///
/// The clock of an event summarises the event's entire causal past
/// *including the event itself*: component `t` is the number of events of
/// thread `t` that happen-before-or-equal this event. Clocks are a property
/// of the partial order only — two linearizations of the same relation
/// assign identical clocks to identical events — which makes them the
/// canonical representation underlying all fingerprints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// The event.
    pub event: Event,
    /// Vector clock of the event (causal past, inclusive).
    pub clock: VectorClock,
    /// 128-bit digest of `(thread, ordinal, pc, kind, clock)` — the
    /// per-event ingredient of trace fingerprints.
    pub hash: u128,
}

impl EventRecord {
    fn new(event: Event, clock: VectorClock) -> Self {
        let hash = event_record_hash(&event, &clock);
        EventRecord { event, clock, hash }
    }
}

/// Incremental happens-before computation over a growing trace.
///
/// Feed events in schedule order with [`push`](HbBuilder::push); at any
/// point, [`prefix_fingerprint`](HbBuilder::prefix_fingerprint) digests the
/// relation over the events so far, and [`finish`](HbBuilder::finish) turns
/// the builder into an immutable [`HbRelation`].
///
/// The prefix fingerprint is **linearization-invariant**: it combines the
/// per-event record hashes with commutative accumulators (XOR and a
/// wrapping sum), so two different schedule prefixes that are
/// linearizations of the same partial order — which assign the same clocks
/// to the same events — digest identically, regardless of interleaving
/// order. This is exactly the property HBR caching needs: the cache key for
/// "have we been in an equivalent prefix before?" must not depend on which
/// linearization got there first.
///
/// The builder is `Clone`, so exploration engines snapshot it alongside the
/// executor at each scheduling point.
#[derive(Debug, Clone)]
pub struct HbBuilder {
    engine: ClockEngine,
    records: Vec<EventRecord>,
    acc: PrefixAccumulator,
}

impl HbBuilder {
    /// Creates a builder for a program shape: `n_threads` threads,
    /// `n_vars` shared variables, `n_mutexes` mutexes.
    pub fn new(mode: HbMode, n_threads: usize, n_vars: usize, n_mutexes: usize) -> Self {
        HbBuilder {
            engine: ClockEngine::new(mode, n_threads, n_vars, n_mutexes),
            records: Vec::new(),
            acc: PrefixAccumulator::new(),
        }
    }

    /// Creates a builder sized for `program`.
    pub fn for_program(mode: HbMode, program: &lazylocks_model::Program) -> Self {
        HbBuilder::new(
            mode,
            program.thread_count(),
            program.vars().len(),
            program.mutexes().len(),
        )
    }

    /// The mode this builder computes.
    pub fn mode(&self) -> HbMode {
        self.engine.mode()
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no events have been pushed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records the next event of the schedule and returns its record.
    pub fn push(&mut self, event: Event) -> &EventRecord {
        let clock = self.engine.apply(&event).clone();
        let record = EventRecord::new(event, clock);
        self.acc.absorb(record.hash);
        self.records.push(record);
        self.records.last().unwrap()
    }

    /// Linearization-invariant digest of the relation over the events
    /// pushed so far. Constant time.
    pub fn prefix_fingerprint(&self) -> u128 {
        self.acc.fingerprint()
    }

    /// The records pushed so far, in schedule order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Clock of the latest event of `thread` (zero clock if none).
    pub fn thread_clock(&self, thread: lazylocks_model::ThreadId) -> &VectorClock {
        self.engine.thread_clock(thread)
    }

    /// Freezes the builder into an immutable relation.
    pub fn finish(self) -> HbRelation {
        HbRelation::from_parts(self.engine.mode(), self.engine.thread_width(), self.records)
    }

    /// Computes the relation of a complete trace in one call.
    pub fn from_trace(
        mode: HbMode,
        program: &lazylocks_model::Program,
        trace: &[Event],
    ) -> HbRelation {
        let mut b = HbBuilder::for_program(mode, program);
        for &e in trace {
            b.push(e);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{MutexId, ThreadId, VarId, VisibleKind};
    use lazylocks_runtime::EventId;

    fn ev(thread: u16, ordinal: u32, kind: VisibleKind) -> Event {
        Event {
            id: EventId {
                thread: ThreadId(thread),
                ordinal,
            },
            kind,
            pc: ordinal, // arbitrary but deterministic
        }
    }

    /// The trace of the paper's Figure 1:
    /// T1: lock(m) read(x) unlock(m) write(y)
    /// T2: write(z) lock(m) read(x) unlock(m)
    /// scheduled as all of T1 then all of T2.
    fn figure1_trace() -> Vec<Event> {
        let m = MutexId(0);
        let (x, y, z) = (VarId(0), VarId(1), VarId(2));
        vec![
            ev(0, 0, VisibleKind::Lock(m)),
            ev(0, 1, VisibleKind::Read(x)),
            ev(0, 2, VisibleKind::Unlock(m)),
            ev(0, 3, VisibleKind::Write(y)),
            ev(1, 0, VisibleKind::Write(z)),
            ev(1, 1, VisibleKind::Lock(m)),
            ev(1, 2, VisibleKind::Read(x)),
            ev(1, 3, VisibleKind::Unlock(m)),
        ]
    }

    fn build(mode: HbMode, trace: &[Event]) -> HbBuilder {
        let mut b = HbBuilder::new(mode, 2, 3, 1);
        for &e in trace {
            b.push(e);
        }
        b
    }

    #[test]
    fn program_order_is_always_present() {
        for mode in HbMode::ALL {
            let b = build(mode, &figure1_trace());
            let recs = b.records();
            // T1's events have strictly increasing clocks.
            for i in 1..4 {
                assert!(
                    recs[i - 1].clock.lt(&recs[i].clock),
                    "{mode:?}: program order lost at {i}"
                );
            }
        }
    }

    #[test]
    fn figure1_regular_hbr_has_mutex_edge() {
        let b = build(HbMode::Regular, &figure1_trace());
        let recs = b.records();
        // T2's lock (index 5) is after T1's unlock (index 2): the clock of
        // the lock must dominate the unlock's clock.
        assert!(recs[2].clock.lt(&recs[5].clock));
        // Hence T2's read of x is also causally after T1's read? No:
        // read-read is not an edge, but the lock edge orders them here.
        assert!(recs[1].clock.lt(&recs[6].clock));
    }

    #[test]
    fn figure1_lazy_hbr_has_no_inter_thread_edges() {
        // In Figure 1 the only inter-thread edge is mutex-induced; the lazy
        // HBR drops it, so every T1 event is concurrent with every T2 event.
        let b = build(HbMode::Lazy, &figure1_trace());
        let recs = b.records();
        for r1 in &recs[0..4] {
            for r2 in &recs[4..8] {
                assert!(
                    r1.clock.concurrent(&r2.clock),
                    "lazy HBR must not order {} and {}",
                    r1.event,
                    r2.event
                );
            }
        }
    }

    #[test]
    fn figure1_lazy_fingerprint_is_schedule_independent() {
        // Schedule A: all of T1, then all of T2 (the feasible order above).
        let fp_a = build(HbMode::Lazy, &figure1_trace()).prefix_fingerprint();
        // Schedule B: T2's write(z) first, then T1, then the rest of T2 —
        // another feasible schedule of the same program.
        let tr = figure1_trace();
        let reordered = vec![tr[4], tr[0], tr[1], tr[2], tr[3], tr[5], tr[6], tr[7]];
        let fp_b = build(HbMode::Lazy, &reordered).prefix_fingerprint();
        assert_eq!(fp_a, fp_b, "same lazy HBR must fingerprint identically");

        // Under the regular HBR these two schedules also have the same
        // relation (the mutex edge direction is unchanged) — but a schedule
        // where T2 takes the lock first differs.
        let fp_ra = build(HbMode::Regular, &tr).prefix_fingerprint();
        let fp_rb = build(HbMode::Regular, &reordered).prefix_fingerprint();
        assert_eq!(fp_ra, fp_rb);
        let swapped = vec![tr[4], tr[5], tr[6], tr[7], tr[0], tr[1], tr[2], tr[3]];
        // Re-number ordinals? Not needed: each thread's own sequence is
        // unchanged, only the interleaving differs.
        let fp_rc = build(HbMode::Regular, &swapped).prefix_fingerprint();
        assert_ne!(fp_ra, fp_rc, "lock-order reversal changes the regular HBR");
        let fp_lc = build(HbMode::Lazy, &swapped).prefix_fingerprint();
        assert_eq!(
            fp_a, fp_lc,
            "lock-order reversal is invisible to the lazy HBR"
        );
    }

    #[test]
    fn write_read_edge_exists_in_regular_and_lazy() {
        let x = VarId(0);
        let trace = vec![
            ev(0, 0, VisibleKind::Write(x)),
            ev(1, 0, VisibleKind::Read(x)),
        ];
        for mode in [HbMode::Regular, HbMode::Lazy] {
            let b = build(mode, &trace);
            assert!(
                b.records()[0].clock.lt(&b.records()[1].clock),
                "{mode:?}: write→read edge missing"
            );
        }
        // Sync-only sees no variable edges.
        let b = build(HbMode::SyncOnly, &trace);
        assert!(b.records()[0].clock.concurrent(&b.records()[1].clock));
    }

    #[test]
    fn read_read_is_unordered() {
        let x = VarId(0);
        let trace = vec![
            ev(0, 0, VisibleKind::Read(x)),
            ev(1, 0, VisibleKind::Read(x)),
        ];
        for mode in HbMode::ALL {
            let b = build(mode, &trace);
            assert!(
                b.records()[0].clock.concurrent(&b.records()[1].clock),
                "{mode:?}: read-read must stay unordered"
            );
        }
    }

    #[test]
    fn read_to_write_edge_exists() {
        let x = VarId(0);
        let trace = vec![
            ev(0, 0, VisibleKind::Read(x)),
            ev(1, 0, VisibleKind::Write(x)),
        ];
        let b = build(HbMode::Regular, &trace);
        assert!(b.records()[0].clock.lt(&b.records()[1].clock));
    }

    #[test]
    fn reads_before_older_write_are_covered_transitively() {
        let x = VarId(0);
        // r0(T0) w1(T1) w2(T2): r0→w1→w2; clock of w2 must dominate r0.
        let trace = vec![
            ev(0, 0, VisibleKind::Read(x)),
            ev(1, 0, VisibleKind::Write(x)),
            ev(2, 0, VisibleKind::Write(x)),
        ];
        let mut b = HbBuilder::new(HbMode::Regular, 3, 1, 0);
        for &e in &trace {
            b.push(e);
        }
        let recs = b.records();
        assert!(recs[0].clock.lt(&recs[2].clock));
        assert!(recs[1].clock.lt(&recs[2].clock));
    }

    #[test]
    fn prefix_fingerprint_changes_with_each_event() {
        let mut b = HbBuilder::new(HbMode::Regular, 2, 1, 1);
        let fp0 = b.prefix_fingerprint();
        b.push(ev(0, 0, VisibleKind::Write(VarId(0))));
        let fp1 = b.prefix_fingerprint();
        b.push(ev(1, 0, VisibleKind::Read(VarId(0))));
        let fp2 = b.prefix_fingerprint();
        assert_ne!(fp0, fp1);
        assert_ne!(fp1, fp2);
        assert_ne!(fp0, fp2);
    }

    #[test]
    fn fingerprint_distinguishes_edge_direction() {
        let x = VarId(0);
        // write then read vs read then write: different partial orders.
        let wr = build(
            HbMode::Regular,
            &[
                ev(0, 0, VisibleKind::Write(x)),
                ev(1, 0, VisibleKind::Read(x)),
            ],
        );
        let rw = build(
            HbMode::Regular,
            &[
                ev(1, 0, VisibleKind::Read(x)),
                ev(0, 0, VisibleKind::Write(x)),
            ],
        );
        assert_ne!(wr.prefix_fingerprint(), rw.prefix_fingerprint());
    }

    #[test]
    #[should_panic(expected = "ordinal order")]
    fn out_of_order_ordinals_rejected_in_debug() {
        let mut b = HbBuilder::new(HbMode::Regular, 1, 1, 0);
        b.push(ev(0, 1, VisibleKind::Read(VarId(0))));
    }

    #[test]
    fn builder_clone_is_independent() {
        let mut b = HbBuilder::new(HbMode::Lazy, 2, 1, 0);
        b.push(ev(0, 0, VisibleKind::Write(VarId(0))));
        let saved = b.clone();
        b.push(ev(1, 0, VisibleKind::Read(VarId(0))));
        assert_eq!(saved.len(), 1);
        assert_eq!(b.len(), 2);
        assert_ne!(saved.prefix_fingerprint(), b.prefix_fingerprint());
    }
}
