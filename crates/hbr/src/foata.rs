//! Foata normal form of a happens-before relation.
//!
//! The Foata normal form decomposes a partial order into a canonical
//! sequence of *layers*: layer 0 holds the minimal events, layer `k+1` the
//! events that become minimal once layers `0..=k` are removed. Equivalently,
//! an event's layer is the length of the longest happens-before chain ending
//! at it. Events within a layer are pairwise independent and are listed in
//! event-id order, making the form a canonical representative of the
//! Mazurkiewicz trace — two schedules have the same relation iff their
//! Foata forms coincide. The test suite uses this as an independent check
//! of the clock-based canonical form.

use crate::relation::HbRelation;
use lazylocks_runtime::Event;

/// Computes the Foata layers of `relation`. Layer `k` is sorted by
/// `(thread, ordinal)`.
pub fn foata_layers(relation: &HbRelation) -> Vec<Vec<Event>> {
    let n = relation.len();
    // depth[i] = longest predecessor chain length = layer index.
    let mut depth = vec![0usize; n];
    // Events are given in schedule order, so every predecessor of an event
    // appears earlier in the records; one forward pass suffices.
    for j in 0..n {
        let mut d = 0;
        for (i, &di) in depth.iter().enumerate().take(j) {
            if relation.happens_before(i, j) {
                d = d.max(di + 1);
            }
        }
        depth[j] = d;
    }
    let layer_count = depth.iter().copied().max().map_or(0, |m| m + 1);
    let mut layers: Vec<Vec<Event>> = vec![Vec::new(); layer_count];
    for (i, &d) in depth.iter().enumerate() {
        layers[d].push(relation.records()[i].event);
    }
    for layer in &mut layers {
        layer.sort_by_key(|e| e.id);
    }
    layers
}

#[cfg(test)]
mod tests {
    use crate::builder::HbBuilder;
    use crate::mode::HbMode;
    use lazylocks_model::{MutexId, ThreadId, VarId, VisibleKind};
    use lazylocks_runtime::{Event, EventId};

    fn ev(thread: u16, ordinal: u32, kind: VisibleKind) -> Event {
        Event {
            id: EventId {
                thread: ThreadId(thread),
                ordinal,
            },
            kind,
            pc: ordinal,
        }
    }

    fn layers(mode: HbMode, trace: &[Event]) -> Vec<Vec<Event>> {
        let mut b = HbBuilder::new(mode, 3, 3, 2);
        for &e in trace {
            b.push(e);
        }
        b.finish().foata_normal_form()
    }

    #[test]
    fn independent_events_share_the_first_layer() {
        let trace = vec![
            ev(0, 0, VisibleKind::Write(VarId(0))),
            ev(1, 0, VisibleKind::Write(VarId(1))),
            ev(2, 0, VisibleKind::Write(VarId(2))),
        ];
        let ls = layers(HbMode::Regular, &trace);
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].len(), 3);
        // Canonical order within the layer: by thread id.
        assert_eq!(ls[0][0].thread(), ThreadId(0));
        assert_eq!(ls[0][2].thread(), ThreadId(2));
    }

    #[test]
    fn chains_produce_one_layer_per_link() {
        let x = VarId(0);
        let trace = vec![
            ev(0, 0, VisibleKind::Write(x)),
            ev(1, 0, VisibleKind::Write(x)),
            ev(2, 0, VisibleKind::Write(x)),
        ];
        let ls = layers(HbMode::Regular, &trace);
        assert_eq!(ls.len(), 3);
        for (k, layer) in ls.iter().enumerate() {
            assert_eq!(layer.len(), 1);
            assert_eq!(layer[0].thread(), ThreadId(k as u16));
        }
    }

    #[test]
    fn foata_form_is_interleaving_invariant() {
        let x = VarId(0);
        let z = VarId(2);
        let a = vec![
            ev(0, 0, VisibleKind::Write(x)),
            ev(1, 0, VisibleKind::Write(z)),
            ev(1, 1, VisibleKind::Read(x)),
        ];
        // Swap the two independent first events.
        let b = vec![a[1], a[0], a[2]];
        assert_eq!(layers(HbMode::Regular, &a), layers(HbMode::Regular, &b));
    }

    #[test]
    fn foata_form_differs_when_relation_differs() {
        let m = MutexId(0);
        let t1 = [
            ev(0, 0, VisibleKind::Lock(m)),
            ev(0, 1, VisibleKind::Unlock(m)),
        ];
        let t2 = [
            ev(1, 0, VisibleKind::Lock(m)),
            ev(1, 1, VisibleKind::Unlock(m)),
        ];
        let first_t1 = layers(HbMode::Regular, &[t1[0], t1[1], t2[0], t2[1]]);
        let first_t2 = layers(HbMode::Regular, &[t2[0], t2[1], t1[0], t1[1]]);
        assert_ne!(first_t1, first_t2);
        // Lazily, both orders give the same (fully parallel) form.
        let lazy_a = layers(HbMode::Lazy, &[t1[0], t1[1], t2[0], t2[1]]);
        let lazy_b = layers(HbMode::Lazy, &[t2[0], t2[1], t1[0], t1[1]]);
        assert_eq!(lazy_a, lazy_b);
        assert_eq!(lazy_a.len(), 2, "program order still layers each thread");
    }

    #[test]
    fn layer_members_are_pairwise_independent() {
        let x = VarId(0);
        let trace = vec![
            ev(0, 0, VisibleKind::Write(x)),
            ev(1, 0, VisibleKind::Read(x)),
            ev(2, 0, VisibleKind::Read(x)),
        ];
        let mut b = HbBuilder::new(HbMode::Regular, 3, 3, 2);
        for &e in &trace {
            b.push(e);
        }
        let rel = b.finish();
        let ls = rel.foata_normal_form();
        // Layer 1 holds the two reads, which are mutually concurrent.
        assert_eq!(ls[1].len(), 2);
        assert!(rel.concurrent(1, 2));
    }

    #[test]
    fn empty_trace_has_no_layers() {
        assert!(layers(HbMode::Regular, &[]).is_empty());
    }
}
