//! The three happens-before variants.

use lazylocks_model::VisibleKind;
use std::fmt;

/// Which inter-thread edges the happens-before construction admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HbMode {
    /// Paper §2, clause (b): same variable or mutex, at least one
    /// modification. The relation used by classic DPOR and HBR caching.
    Regular,
    /// Paper §2, modified clause (b): same *non-mutex* variable, at least
    /// one modification. The paper's contribution — mutex operations
    /// induce no inter-thread edges.
    Lazy,
    /// Program order plus mutex edges only. Not part of the paper's
    /// equivalence story; this is the relation under which two conflicting
    /// variable accesses that are unordered constitute a *data race*.
    SyncOnly,
}

impl HbMode {
    /// Whether two visible operations are *dependent* under this mode —
    /// i.e. whether their relative order is (assumed) observable.
    pub fn dependent(self, a: VisibleKind, b: VisibleKind) -> bool {
        match self {
            HbMode::Regular => a.dependent_regular(b),
            HbMode::Lazy => a.dependent_lazy(b),
            HbMode::SyncOnly => match (a.mutex(), b.mutex()) {
                (Some(ma), Some(mb)) => ma == mb,
                _ => false,
            },
        }
    }

    /// All modes, for exhaustive testing.
    pub const ALL: [HbMode; 3] = [HbMode::Regular, HbMode::Lazy, HbMode::SyncOnly];
}

impl fmt::Display for HbMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbMode::Regular => write!(f, "regular"),
            HbMode::Lazy => write!(f, "lazy"),
            HbMode::SyncOnly => write!(f, "sync-only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks_model::{MutexId, VarId};

    #[test]
    fn mode_dependence_dispatch() {
        let wx = VisibleKind::Write(VarId(0));
        let rx = VisibleKind::Read(VarId(0));
        let lm = VisibleKind::Lock(MutexId(0));
        let um = VisibleKind::Unlock(MutexId(0));

        assert!(HbMode::Regular.dependent(wx, rx));
        assert!(HbMode::Regular.dependent(lm, um));
        assert!(HbMode::Lazy.dependent(wx, rx));
        assert!(!HbMode::Lazy.dependent(lm, um));
        assert!(!HbMode::SyncOnly.dependent(wx, rx));
        assert!(HbMode::SyncOnly.dependent(lm, um));
    }

    #[test]
    fn lazy_dependence_never_exceeds_regular() {
        let kinds = [
            VisibleKind::Read(VarId(0)),
            VisibleKind::Write(VarId(0)),
            VisibleKind::Lock(MutexId(0)),
            VisibleKind::Unlock(MutexId(0)),
        ];
        for &a in &kinds {
            for &b in &kinds {
                if HbMode::Lazy.dependent(a, b) {
                    assert!(HbMode::Regular.dependent(a, b));
                }
                if HbMode::SyncOnly.dependent(a, b) {
                    assert!(HbMode::Regular.dependent(a, b));
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(HbMode::Regular.to_string(), "regular");
        assert_eq!(HbMode::Lazy.to_string(), "lazy");
        assert_eq!(HbMode::SyncOnly.to_string(), "sync-only");
    }
}
