//! Property tests over exhaustively enumerated schedules of small programs:
//!
//! * the three identity representations agree (128-bit fingerprint,
//!   clock-based canonical form, Foata normal form);
//! * equal regular HBR implies equal lazy HBR (class refinement — the
//!   paper's `#lazy HBRs ≤ #HBRs`);
//! * Theorem 2.1: schedules with equal regular HBR reach equal states;
//! * Theorem 2.2: schedules with equal *lazy* HBR reach equal states.
//!
//! The program-family parameter space (4 shapes × 3 thread counts × lock
//! on/off × same-var on/off = 48 programs) is small enough to enumerate
//! exhaustively, which checks strictly more than sampling it.

use lazylocks_hbr::{HbBuilder, HbMode};
use lazylocks_model::{Program, ProgramBuilder, Reg, Value};
use lazylocks_runtime::{Event, ExecPhase, Executor, StateSnapshot};
use std::collections::HashMap;

/// All complete runs of `program` (every schedule, depth-first), capped.
fn all_runs(program: &Program, cap: usize) -> Vec<(Vec<Event>, StateSnapshot)> {
    let mut out = Vec::new();
    let mut trace = Vec::new();
    dfs(&Executor::new(program), &mut trace, &mut out, cap);
    out
}

fn dfs(
    exec: &Executor,
    trace: &mut Vec<Event>,
    out: &mut Vec<(Vec<Event>, StateSnapshot)>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    match exec.phase() {
        ExecPhase::Running => {}
        _ => {
            out.push((trace.clone(), exec.snapshot()));
            return;
        }
    }
    for t in exec.enabled_threads() {
        let mut child = exec.clone();
        let step = child.step(t);
        if let Some(e) = step.event {
            trace.push(e);
            dfs(&child, trace, out, cap);
            trace.pop();
        } else {
            // Faulted visible op: the run continues with the thread failed.
            dfs(&child, trace, out, cap);
        }
    }
}

/// A small family of programs with interestingly different HBR structure,
/// parameterised so proptest explores the space.
fn make_program(shape: u8, n_threads: u8, use_lock: bool, same_var: bool) -> Program {
    let n_threads = (n_threads % 3) + 2; // 2..=4
    let mut b = ProgramBuilder::new("prop");
    let m = b.mutex("m");
    match shape % 4 {
        0 => {
            // Each thread increments a variable (shared or private) under
            // an optional global lock.
            let shared = b.var("shared", 0);
            let privates = b.var_array("p", n_threads as usize, 0);
            for i in 0..n_threads {
                let var = if same_var {
                    shared
                } else {
                    privates[i as usize]
                };
                b.thread(format!("T{i}"), |t| {
                    if use_lock {
                        t.lock(m);
                    }
                    t.load(Reg(0), var);
                    t.add(Reg(0), Reg(0), 1);
                    t.store(var, Reg(0));
                    if use_lock {
                        t.unlock(m);
                    }
                });
            }
        }
        1 => {
            // Writer/readers with a post-protocol write.
            let x = b.var("x", 0);
            let y = b.var("y", 0);
            b.thread("W", |t| {
                if use_lock {
                    t.lock(m);
                }
                t.store(x, 7);
                if use_lock {
                    t.unlock(m);
                }
            });
            for i in 1..n_threads {
                b.thread(format!("R{i}"), |t| {
                    if use_lock {
                        t.lock(m);
                    }
                    t.load(Reg(0), x);
                    if use_lock {
                        t.unlock(m);
                    }
                    if same_var {
                        t.store(y, Reg(0));
                    }
                });
            }
        }
        2 => {
            // Value-dependent branching: readers write different vars
            // depending on what they saw.
            let flag = b.var("flag", 0);
            let a = b.var("a", 0);
            let c = b.var("c", 0);
            b.thread("setter", |t| t.store(flag, 1));
            for i in 1..n_threads {
                b.thread(format!("B{i}"), |t| {
                    t.load(Reg(0), flag);
                    let other = t.label();
                    t.branch_if_zero(Reg(0), other);
                    t.store(a, i as Value);
                    let done = t.label();
                    t.jump(done);
                    t.bind(other);
                    t.store(c, i as Value);
                    t.bind(done);
                });
            }
        }
        _ => {
            // Two locks, threads alternate ownership patterns.
            let m2 = b.mutex("m2");
            let x = b.var("x", 0);
            for i in 0..n_threads {
                b.thread(format!("T{i}"), |t| {
                    let (first, second) = if i % 2 == 0 { (m, m2) } else { (m2, m) };
                    t.lock(first);
                    if use_lock {
                        // Nested section touching the shared variable.
                        t.load(Reg(0), x);
                        t.add(Reg(0), Reg(0), 1);
                        t.store(x, Reg(0));
                    }
                    t.unlock(first);
                    t.lock(second);
                    t.unlock(second);
                });
            }
        }
    }
    b.build()
}

const RUN_CAP: usize = 4_000;

/// The enumerated `(trace, terminal state)` runs of one program.
type Runs = Vec<(Vec<Event>, StateSnapshot)>;

/// Every `(shape, n_threads, use_lock, same_var)` combination with its
/// enumerated runs (skipping empty enumerations, as the property tests
/// did via `prop_assume`).
fn all_cases() -> Vec<(Program, Runs)> {
    let mut out = Vec::new();
    for shape in 0u8..4 {
        for n_threads in 0u8..3 {
            for use_lock in [false, true] {
                for same_var in [false, true] {
                    let p = make_program(shape, n_threads, use_lock, same_var);
                    let runs = all_runs(&p, RUN_CAP);
                    if !runs.is_empty() {
                        out.push((p, runs));
                    }
                }
            }
        }
    }
    out
}

#[test]
fn identity_representations_agree() {
    for (p, runs) in all_cases() {
        for mode in HbMode::ALL {
            // Equality of any two representations is checked in linear time
            // by demanding a bijection between their equivalence classes:
            // "fp equal ⇒ canonical equal" via fp → canonical, and the
            // converse via canonical → fp; likewise canonical ↔ Foata.
            let mut canon_of_fp: HashMap<u128, lazylocks_hbr::CanonicalHb> = HashMap::new();
            let mut fp_of_canon: HashMap<lazylocks_hbr::CanonicalHb, u128> = HashMap::new();
            let mut foata_of_canon: HashMap<lazylocks_hbr::CanonicalHb, Vec<Vec<Event>>> =
                HashMap::new();
            let mut canon_of_foata: HashMap<Vec<Vec<Event>>, lazylocks_hbr::CanonicalHb> =
                HashMap::new();
            for (trace, _) in &runs {
                let rel = HbBuilder::from_trace(mode, &p, trace);
                let fp = rel.fingerprint();
                let canon = rel.canonical();
                let foata = rel.foata_normal_form();
                if let Some(prev) = canon_of_fp.insert(fp, canon.clone()) {
                    assert_eq!(
                        prev, canon,
                        "{mode} mode: same fingerprint, different canonical forms"
                    );
                }
                if let Some(prev) = fp_of_canon.insert(canon.clone(), fp) {
                    assert_eq!(
                        prev, fp,
                        "{mode} mode: same canonical form, different fingerprints"
                    );
                }
                if let Some(prev) = foata_of_canon.insert(canon.clone(), foata.clone()) {
                    assert_eq!(
                        prev, foata,
                        "{mode} mode: same canonical form, different Foata forms"
                    );
                }
                if let Some(prev) = canon_of_foata.insert(foata, canon.clone()) {
                    assert_eq!(
                        prev, canon,
                        "{mode} mode: same Foata form, different canonical forms"
                    );
                }
            }
        }
    }
}

#[test]
fn regular_classes_refine_lazy_classes() {
    for (p, runs) in all_cases() {
        let mut lazy_of_regular: HashMap<u128, u128> = HashMap::new();
        let mut regular_fps = std::collections::HashSet::new();
        let mut lazy_fps = std::collections::HashSet::new();
        for (trace, _) in &runs {
            let reg = HbBuilder::from_trace(HbMode::Regular, &p, trace).fingerprint();
            let lazy = HbBuilder::from_trace(HbMode::Lazy, &p, trace).fingerprint();
            regular_fps.insert(reg);
            lazy_fps.insert(lazy);
            if let Some(prev) = lazy_of_regular.insert(reg, lazy) {
                assert_eq!(prev, lazy, "equal regular HBR must imply equal lazy HBR");
            }
        }
        assert!(
            lazy_fps.len() <= regular_fps.len(),
            "#lazy HBRs ({}) must be ≤ #HBRs ({})",
            lazy_fps.len(),
            regular_fps.len()
        );
    }
}

#[test]
fn theorems_2_1_and_2_2_state_equality() {
    for (p, runs) in all_cases() {
        for mode in [HbMode::Regular, HbMode::Lazy] {
            let mut state_of_class: HashMap<u128, &StateSnapshot> = HashMap::new();
            for (trace, state) in &runs {
                let fp = HbBuilder::from_trace(mode, &p, trace).fingerprint();
                if let Some(prev) = state_of_class.insert(fp, state) {
                    assert_eq!(prev, state, "{mode} HBR class reached two different states");
                }
            }
        }
    }
}

#[test]
fn state_count_at_most_lazy_class_count() {
    // The paper's inequality chain on fully enumerated state spaces:
    // #states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules.
    for (p, runs) in all_cases() {
        if runs.len() >= RUN_CAP {
            continue; // enumeration was capped: counts are not exhaustive
        }
        let states: std::collections::HashSet<_> = runs.iter().map(|(_, s)| s.clone()).collect();
        let lazy: std::collections::HashSet<_> = runs
            .iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Lazy, &p, t).fingerprint())
            .collect();
        let regular: std::collections::HashSet<_> = runs
            .iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Regular, &p, t).fingerprint())
            .collect();
        assert!(states.len() <= lazy.len());
        assert!(lazy.len() <= regular.len());
        assert!(regular.len() <= runs.len());
    }
}
