//! The benchmark registry: 79 programs with dense 1-based ids.

use crate::families;
use lazylocks_model::Program;

/// What a benchmark is expected to exhibit (used by the smoke tests and
/// the bug-hunting examples).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Expectations {
    /// The program has at least one deadlocking schedule.
    pub may_deadlock: bool,
    /// The program has at least one schedule with an assertion failure.
    pub may_fail_assert: bool,
}

impl Expectations {
    /// `true` if the benchmark is expected to exhibit any bug class — the
    /// membership test for the regression corpus (`lazylocks corpus
    /// seed`).
    pub fn expects_bug(&self) -> bool {
        self.may_deadlock || self.may_fail_assert
    }
}

/// One benchmark of the corpus.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Dense 1-based id, stable across runs (the point label in the
    /// figures).
    pub id: usize,
    /// Unique name, usable with `lazylocks run --bench <name>`.
    pub name: String,
    /// Family name (one of the modules of [`families`](crate::families)).
    pub family: &'static str,
    /// One-line description.
    pub description: String,
    /// The guest program.
    pub program: Program,
    /// Expected bug classes.
    pub expect: Expectations,
}

/// Builds the full corpus. Deterministic: every call returns the same 79
/// benchmarks in the same order.
pub fn all() -> Vec<Benchmark> {
    let mut out: Vec<Benchmark> = Vec::with_capacity(79);
    let mut add = |name: String,
                   family: &'static str,
                   description: String,
                   program: Program,
                   expect: Expectations| {
        out.push(Benchmark {
            id: out.len() + 1,
            name,
            family,
            description,
            program,
            expect,
        });
    };

    families::paper::register(&mut add);
    families::coarse::register(&mut add);
    families::fine::register(&mut add);
    families::accounts::register(&mut add);
    families::buffer::register(&mut add);
    families::philosophers::register(&mut add);
    families::rw::register(&mut add);
    families::classic::register(&mut add);
    families::flags::register(&mut add);
    families::barrier::register(&mut add);
    families::pipeline::register(&mut add);
    families::workqueue::register(&mut add);

    debug_assert_eq!(out.len(), 79, "the corpus must have exactly 79 entries");
    out
}

/// Looks up a benchmark by 1-based id.
pub fn by_id(id: usize) -> Option<Benchmark> {
    all().into_iter().find(|b| b.id == id)
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// The bug-bearing subset of the corpus: every benchmark whose
/// [`Expectations`] promise at least one deadlocking or asserting
/// schedule. This is the seed set for the regression trace corpus.
pub fn buggy() -> Vec<Benchmark> {
    all()
        .into_iter()
        .filter(|b| b.expect.expects_bug())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_has_79_unique_benchmarks() {
        let suite = all();
        assert_eq!(suite.len(), 79);
        let names: HashSet<_> = suite.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), 79, "names must be unique");
        for (i, b) in suite.iter().enumerate() {
            assert_eq!(b.id, i + 1, "ids must be dense and 1-based");
        }
    }

    #[test]
    fn every_program_validates() {
        for b in all() {
            b.program
                .validate()
                .unwrap_or_else(|e| panic!("{} fails validation: {e}", b.name));
            assert!(!b.description.is_empty());
        }
    }

    #[test]
    fn lookups_work() {
        assert_eq!(by_id(1).unwrap().name, "paper-figure1");
        assert!(by_id(0).is_none());
        assert!(by_id(80).is_none());
        let b = by_name("paper-figure1").unwrap();
        assert_eq!(b.id, 1);
        assert!(by_name("no-such-benchmark").is_none());
    }

    #[test]
    fn buggy_subset_matches_expectations() {
        let buggy = buggy();
        assert!(!buggy.is_empty(), "the corpus has bug-bearing benchmarks");
        for b in &buggy {
            assert!(b.expect.expects_bug());
        }
        let expected: usize = all().iter().filter(|b| b.expect.expects_bug()).count();
        assert_eq!(buggy.len(), expected);
        assert!(
            buggy.iter().any(|b| b.name == "philosophers-naive-2"),
            "naive philosophers belong to the regression seed set"
        );
    }

    #[test]
    fn registry_is_deterministic() {
        let a = all();
        let b = all();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.program, y.program);
        }
    }

    #[test]
    fn families_are_represented() {
        let suite = all();
        let families: HashSet<_> = suite.iter().map(|b| b.family).collect();
        for f in [
            "paper",
            "coarse",
            "fine",
            "accounts",
            "buffer",
            "philosophers",
            "rw",
            "classic",
            "flags",
            "barrier",
            "pipeline",
            "workqueue",
        ] {
            assert!(families.contains(f), "family {f} missing");
        }
    }
}
