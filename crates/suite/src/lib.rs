//! The 79-program benchmark corpus.
//!
//! The paper evaluates the lazy happens-before relation on 79 open-source
//! multithreaded Java benchmarks. Those programs (and the JVM they run on)
//! are not reproducible here, so this crate substitutes **79 synthetic
//! guest programs across 16 families** chosen to span the axis the paper's
//! figures measure: how much of a program's schedule diversity is
//! mutex-induced (and therefore invisible to the lazy HBR) versus
//! data-induced (visible to both relations).
//!
//! * Heavy lazy-HBR winners: coarse locks over disjoint or read-only data
//!   ([`families::coarse`]), lock-step protocols whose critical sections
//!   do not conflict ([`families::philosophers`],
//!   [`families::workqueue`], the coarse [`families::accounts`] variants).
//! * Diagonal benchmarks: lock-free flag protocols ([`families::flags`],
//!   where the two relations coincide) and coarse locks over *shared*
//!   mutable data ([`families::coarse`]'s shared variants, where every
//!   lock order is also a data order).
//! * Classic systematic-concurrency-testing programs: the `indexer` and
//!   `filesystem` benchmarks of Flanagan & Godefroid's DPOR paper and the
//!   `last-zero` stress test ([`families::classic`]).
//! * Bug-bearing programs (deadlocking philosophers and unordered account
//!   transfers) are flagged via [`Expectations`].
//!
//! ```
//! let suite = lazylocks_suite::all();
//! assert_eq!(suite.len(), 79);
//! assert_eq!(suite[0].name, "paper-figure1");
//! // Ids are 1-based and dense, like the paper's figures.
//! for (i, b) in suite.iter().enumerate() {
//!     assert_eq!(b.id, i + 1);
//! }
//! ```

pub mod families;
mod registry;

pub use registry::{all, buggy, by_id, by_name, Benchmark, Expectations};
