//! Lock-free flag protocols — mutex-free benchmarks where the regular and
//! lazy happens-before relations coincide exactly (diagonal points in
//! Figure 2).
//!
//! Includes Peterson's and Dekker's mutual-exclusion algorithms (with
//! bounded spinning and a mutual-exclusion assertion), the store-buffer
//! litmus test, message passing over a ready flag, and an n-flag rendezvous.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// Peterson's algorithm for two threads, with bounded spinning. Each
/// thread enters the critical section (checked with an in-CS counter
/// assertion) or gives up after `spins` failed checks.
pub fn peterson(spins: usize) -> Program {
    let mut b = ProgramBuilder::new("peterson");
    let flag0 = b.var("flag0", 0);
    let flag1 = b.var("flag1", 0);
    let turn = b.var("turn", 0);
    let in_cs = b.var("in_cs", 0);
    let entered = b.var_array("entered", 2, 0);

    #[allow(clippy::needless_range_loop)] // `me` is the thread id, not just an index
    for me in 0..2usize {
        let (my_flag, their_flag) = if me == 0 {
            (flag0, flag1)
        } else {
            (flag1, flag0)
        };
        let other = 1 - me;
        let my_entered = entered[me];
        b.thread(format!("T{me}"), move |t| {
            let rf = t.alloc_reg();
            let rt = t.alloc_reg();
            let rc = t.alloc_reg();
            t.store(my_flag, 1);
            t.store(turn, other as Value);
            let enter = t.label();
            let give_up = t.label();
            for _ in 0..spins {
                // May enter when the other flag is down or it is our turn.
                t.load(rf, their_flag);
                t.branch_if_zero(rf, enter);
                t.load(rt, turn);
                t.eq(rt, rt, me as Value);
                t.branch_if(rt, enter);
            }
            t.jump(give_up);
            t.bind(enter);
            // Critical section with mutual-exclusion check.
            t.load(rc, in_cs);
            t.add(rc, rc, 1);
            t.store(in_cs, rc);
            t.load(rc, in_cs);
            t.eq(rc, rc, 1);
            t.assert_true(rc, "mutual exclusion violated");
            t.store(in_cs, 0);
            t.store(my_entered, 1);
            t.bind(give_up);
            t.store(my_flag, 0);
            t.set(rf, 0);
            t.set(rt, 0);
            t.set(rc, 0);
        });
    }
    b.build()
}

/// A *check-then-act* handshake (the broken cousin of Dekker's algorithm):
/// each thread checks the other's flag **before** raising its own, so both
/// can pass the check simultaneously and violate mutual exclusion — the
/// classic time-of-check/time-of-use bug.
pub fn dekker(spins: usize) -> Program {
    let mut b = ProgramBuilder::new("dekker");
    let flags = b.var_array("flag", 2, 0);
    let in_cs = b.var("in_cs", 0);
    for me in 0..2usize {
        let my_flag = flags[me];
        let their_flag = flags[1 - me];
        b.thread(format!("T{me}"), move |t| {
            let rf = t.alloc_reg();
            let rc = t.alloc_reg();
            let enter = t.label();
            let give_up = t.label();
            for _ in 0..spins {
                t.load(rf, their_flag);
                t.branch_if_zero(rf, enter); // TOCTOU: check before set
            }
            t.jump(give_up);
            t.bind(enter);
            t.store(my_flag, 1);
            t.load(rc, in_cs);
            t.add(rc, rc, 1);
            t.store(in_cs, rc);
            t.load(rc, in_cs);
            t.eq(rc, rc, 1);
            t.assert_true(rc, "mutual exclusion violated by check-then-act");
            t.store(in_cs, 0);
            t.store(my_flag, 0);
            t.bind(give_up);
            t.set(rf, 0);
            t.set(rc, 0);
        });
    }
    b.build()
}

/// The store-buffer litmus test: `T0: x=1; r0=y` / `T1: y=1; r1=x`. Under
/// sequential consistency (our model) at least one thread observes the
/// other's store.
pub fn store_buffer() -> Program {
    let mut b = ProgramBuilder::new("store-buffer");
    let x = b.var("x", 0);
    let y = b.var("y", 0);
    let r0 = b.var("obs0", -1);
    let r1 = b.var("obs1", -1);
    b.thread("T0", |t| {
        let r = t.alloc_reg();
        t.store(x, 1);
        t.load(r, y);
        t.store(r0, r);
        t.set(r, 0);
    });
    b.thread("T1", |t| {
        let r = t.alloc_reg();
        t.store(y, 1);
        t.load(r, x);
        t.store(r1, r);
        t.set(r, 0);
    });
    b.build()
}

/// Message passing: the producer writes data then raises a ready flag; the
/// consumer spins (bounded) on the flag and asserts it reads the payload
/// when the flag was seen.
pub fn message_passing(spins: usize) -> Program {
    let mut b = ProgramBuilder::new("message-passing");
    let data = b.var("data", 0);
    let ready = b.var("ready", 0);
    let got = b.var("got", -1);
    b.thread("producer", |t| {
        t.store(data, 42);
        t.store(ready, 1);
    });
    b.thread("consumer", move |t| {
        let rf = t.alloc_reg();
        let rv = t.alloc_reg();
        let have = t.label();
        let give_up = t.label();
        for _ in 0..spins {
            t.load(rf, ready);
            t.branch_if(rf, have);
        }
        t.jump(give_up);
        t.bind(have);
        t.load(rv, data);
        t.eq(rf, rv, 42);
        t.assert_true(rf, "consumer saw ready but stale data");
        t.store(got, rv);
        t.bind(give_up);
        t.set(rf, 0);
        t.set(rv, 0);
    });
    b.build()
}

/// `n`-thread rendezvous over flags: everyone raises a flag, then counts
/// how many flags it can see.
pub fn rendezvous(n: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("rendezvous-{n}"));
    let flags = b.var_array("flag", n, 0);
    let counts = b.var_array("count", n, 0);
    for i in 0..n {
        let flags = flags.clone();
        let out = counts[i];
        b.thread(format!("T{i}"), move |t| {
            let rs = t.alloc_reg();
            let rv = t.alloc_reg();
            t.store(flags[i], 1);
            t.set(rs, 0);
            for (j, &f) in flags.iter().enumerate() {
                if j != i {
                    t.load(rv, f);
                    t.add(rs, rs, rv);
                }
            }
            t.store(out, rs);
            t.set(rs, 0);
            t.set(rv, 0);
        });
    }
    b.build()
}

/// Registers the family (6 benchmarks).
pub fn register(add: Register) {
    add(
        "peterson".to_string(),
        "flags",
        "Peterson's mutual exclusion with bounded spins and an in-CS assertion".to_string(),
        peterson(2),
        Expectations::default(),
    );
    add(
        "dekker".to_string(),
        "flags",
        "check-then-act flag handshake; violates mutual exclusion (TOCTOU)".to_string(),
        dekker(2),
        Expectations {
            may_fail_assert: true,
            ..Expectations::default()
        },
    );
    add(
        "store-buffer".to_string(),
        "flags",
        "the SB litmus test under sequential consistency".to_string(),
        store_buffer(),
        Expectations::default(),
    );
    add(
        "message-passing".to_string(),
        "flags",
        "flag-guarded hand-off of a payload with a staleness assertion".to_string(),
        message_passing(2),
        Expectations::default(),
    );
    add(
        "rendezvous-2".to_string(),
        "flags",
        "2-thread flag rendezvous".to_string(),
        rendezvous(2),
        Expectations::default(),
    );
    add(
        "rendezvous-3".to_string(),
        "flags",
        "3-thread flag rendezvous".to_string(),
        rendezvous(3),
        Expectations::default(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer};

    #[test]
    fn mutex_free_programs_sit_on_the_diagonal() {
        for p in [store_buffer(), rendezvous(2), message_passing(2)] {
            let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(500_000));
            assert!(!stats.limit_hit, "{}", p.name());
            assert_eq!(
                stats.unique_hbrs,
                stats.unique_lazy_hbrs,
                "{}: no mutexes → identical relations",
                p.name()
            );
        }
    }

    #[test]
    fn peterson_preserves_mutual_exclusion() {
        let stats = Dpor::default().explore(&peterson(2), &ExploreConfig::with_limit(200_000));
        assert_eq!(
            stats.faulted_schedules, 0,
            "Peterson must never violate mutual exclusion"
        );
    }

    #[test]
    fn dekker_naive_check_can_fail() {
        // The simplified flag check admits both threads at once.
        let stats = Dpor::default().explore(&dekker(2), &ExploreConfig::with_limit(200_000));
        assert!(
            stats.faulted_schedules > 0,
            "the naive handshake must violate mutual exclusion somewhere"
        );
    }

    #[test]
    fn store_buffer_has_three_outcomes() {
        // (obs0, obs1) ∈ {(0,1), (1,0), (1,1)} — never (0,0) under SC.
        let stats = DfsEnumeration.explore(&store_buffer(), &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_states, 3);
    }

    #[test]
    fn message_passing_never_sees_stale_data() {
        let stats =
            Dpor::default().explore(&message_passing(2), &ExploreConfig::with_limit(200_000));
        assert_eq!(stats.faulted_schedules, 0, "SC forbids stale reads here");
    }
}
