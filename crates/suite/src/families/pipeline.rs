//! Staged hand-off pipelines.
//!
//! Stage `k` spins (bounded) on `flag[k-1]`, then computes
//! `data[k] = data[k-1] + 1` and raises `flag[k]`. Stage 0 produces
//! immediately. When every stage wins its spin the pipeline delivers
//! `stages` at the sink; starved stages abort and deliver nothing.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder};

/// A `stages`-deep hand-off chain with `spins` bounded wait probes.
pub fn pipeline(stages: usize, spins: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("pipeline-{stages}"));
    let data = b.var_array("data", stages + 1, 0);
    let flag = b.var_array("flag", stages + 1, 0);
    for k in 0..=stages {
        let (d_in, d_out) = (data[k.saturating_sub(1)], data[k]);
        let (f_in, f_out) = (flag[k.saturating_sub(1)], flag[k]);
        b.thread(format!("stage{k}"), move |t| {
            let rf = t.alloc_reg();
            let rv = t.alloc_reg();
            if k == 0 {
                t.store(d_out, 1);
                t.store(f_out, 1);
            } else {
                let go = t.label();
                let give_up = t.label();
                for _ in 0..spins {
                    t.load(rf, f_in);
                    t.branch_if(rf, go);
                }
                t.jump(give_up);
                t.bind(go);
                t.load(rv, d_in);
                t.add(rv, rv, 1);
                t.store(d_out, rv);
                t.store(f_out, 1);
                t.bind(give_up);
            }
            t.set(rf, 0);
            t.set(rv, 0);
        });
    }
    b.build()
}

/// Registers the family (4 benchmarks).
pub fn register(add: Register) {
    for (stages, spins) in [(1, 2), (2, 2), (2, 3), (3, 2)] {
        add(
            format!("pipeline-{stages}-s{spins}"),
            "pipeline",
            format!("{stages}-stage hand-off chain with {spins} bounded wait probes"),
            pipeline(stages, spins),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, ExploreConfig, Explorer};

    #[test]
    fn pipeline_is_mutex_free_and_on_the_diagonal() {
        let stats = DfsEnumeration.explore(&pipeline(1, 2), &ExploreConfig::with_limit(200_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_hbrs, stats.unique_lazy_hbrs);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn full_delivery_is_reachable() {
        use lazylocks::Dpor;
        // At least one schedule carries the item all the way: distinct
        // terminal states include the fully-delivered one.
        let stats = Dpor::default().explore(&pipeline(2, 2), &ExploreConfig::with_limit(100_000));
        assert!(stats.unique_states >= 2);
        assert_eq!(stats.deadlocks, 0);
    }
}
