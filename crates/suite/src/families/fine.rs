//! Fine-grained locking: one mutex per data element.
//!
//! Thread `i` updates element `i % elements` under that element's own lock.
//! When `threads <= elements` every thread owns a distinct element and the
//! program behaves like the disjoint coarse family with *independent*
//! locks; when `threads > elements` some threads contend on both the lock
//! and the data, mixing diagonal and below-diagonal behaviour.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// Per-element locks; thread `i` adds `i+1` to element `i % elements`.
pub fn fine_grained(threads: usize, elements: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("fine-t{threads}-e{elements}"));
    let locks = b.mutex_array("lk", elements);
    let cells = b.var_array("cell", elements, 0);
    for i in 0..threads {
        let e = i % elements;
        let (lk, cell) = (locks[e], cells[e]);
        b.thread(format!("T{i}"), move |t| {
            let r = t.alloc_reg();
            t.with_lock(lk, |t| {
                t.load(r, cell);
                t.add(r, r, (i + 1) as Value);
                t.store(cell, r);
            });
            t.set(r, 0);
        });
    }
    b.build()
}

/// Registers the family (6 benchmarks).
pub fn register(add: Register) {
    for (threads, elements) in [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2), (2, 4)] {
        add(
            format!("fine-t{threads}-e{elements}"),
            "fine",
            format!("{threads} threads update {elements} cells under per-cell locks"),
            fine_grained(threads, elements),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, ExploreConfig, Explorer};

    #[test]
    fn distinct_elements_are_fully_independent() {
        // 2 threads on 2 elements: no shared data, no shared locks.
        let p = fine_grained(2, 2);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_states, 1);
        assert_eq!(stats.unique_hbrs, 1, "independent locks: one class");
        assert_eq!(stats.unique_lazy_hbrs, 1);
    }

    #[test]
    fn contended_element_behaves_like_coarse_shared() {
        // 3 threads on 2 elements: threads 0 and 2 contend on element 0.
        let p = fine_grained(3, 2);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_hbrs, 2, "two orders of the contended pair");
        assert_eq!(
            stats.unique_lazy_hbrs, 2,
            "the contended data orders them too"
        );
        assert_eq!(stats.unique_states, 1, "addition commutes");
        stats.check_inequality().unwrap();
    }
}
