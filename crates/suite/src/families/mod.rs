//! Benchmark families.
//!
//! Each module contributes a fixed number of benchmarks to the registry via
//! its `register` function; together they form the 79-program corpus:
//!
//! | module | programs | pattern |
//! |--------|----------|---------|
//! | [`paper`] | 1 | the worked example of the paper's Figure 1 |
//! | [`coarse`] | 18 | one global lock over disjoint / read-only / shared data |
//! | [`fine`] | 6 | per-element locks |
//! | [`accounts`] | 8 | bank transfers, coarse and per-account locking |
//! | [`buffer`] | 6 | bounded producer/consumer ring |
//! | [`philosophers`] | 6 | dining philosophers, deadlocking and ordered |
//! | [`rw`] | 5 | readers/writers built from a mutex |
//! | [`classic`] | 12 | indexer, filesystem (Flanagan–Godefroid), last-zero |
//! | [`flags`] | 6 | lock-free flag protocols (Peterson, Dekker, litmus) |
//! | [`barrier`] | 4 | spin barrier over a locked counter |
//! | [`pipeline`] | 4 | staged hand-off chains |
//! | [`workqueue`] | 3 | locked work-stealing index over disjoint items |

pub mod accounts;
pub mod barrier;
pub mod buffer;
pub mod classic;
pub mod coarse;
pub mod fine;
pub mod flags;
pub mod paper;
pub mod philosophers;
pub mod pipeline;
pub mod rw;
pub mod workqueue;

use crate::registry::Expectations;
use lazylocks_model::Program;

/// The callback each family feeds benchmarks into:
/// `(name, family, description, program, expectations)`.
pub type Register<'a> = &'a mut dyn FnMut(String, &'static str, String, Program, Expectations);
