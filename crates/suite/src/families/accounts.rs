//! Bank-account transfers under two locking disciplines.
//!
//! * **coarse** — one bank-wide lock; transfers between *disjoint* account
//!   pairs commute and the lazy HBR collapses their lock orders.
//! * **fine** — per-account locks taken in account order (deadlock-free) or
//!   in transfer order (`unordered`, deadlock-prone — the classic bug).

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{MutexId, Program, ProgramBuilder, ThreadBuilder, Value, VarId};

/// Emits `from -= amount; to += amount` (reads then writes, registers
/// normalised).
fn transfer_body(t: &mut ThreadBuilder, from: VarId, to: VarId, amount: Value) {
    let rf = t.alloc_reg();
    let rt = t.alloc_reg();
    t.load(rf, from);
    t.load(rt, to);
    t.sub(rf, rf, amount);
    t.add(rt, rt, amount);
    t.store(from, rf);
    t.store(to, rt);
    t.set(rf, 0);
    t.set(rt, 0);
}

/// Coarse: one bank lock around each transfer. `pairs[i]` is thread `i`'s
/// `(from, to)` account pair.
pub fn coarse(name: &str, accounts: usize, pairs: &[(usize, usize)]) -> Program {
    let mut b = ProgramBuilder::new(name);
    let bank = b.mutex("bank");
    let accts = b.var_array("acct", accounts, 100);
    for (i, &(from, to)) in pairs.iter().enumerate() {
        let (from, to) = (accts[from], accts[to]);
        b.thread(format!("T{i}"), move |t| {
            t.with_lock(bank, |t| transfer_body(t, from, to, (i + 1) as Value));
        });
    }
    b.build()
}

/// Fine: per-account locks. With `ordered` the locks are taken in account
/// order (deadlock-free); otherwise in `(from, to)` order (deadlock-prone
/// when transfers form a cycle).
pub fn fine(name: &str, accounts: usize, pairs: &[(usize, usize)], ordered: bool) -> Program {
    let mut b = ProgramBuilder::new(name);
    let locks: Vec<MutexId> = b.mutex_array("lk", accounts);
    let accts = b.var_array("acct", accounts, 100);
    for (i, &(from, to)) in pairs.iter().enumerate() {
        let (lf, lt) = (locks[from], locks[to]);
        let (vf, vt) = (accts[from], accts[to]);
        let (first, second) = if ordered && from > to {
            (lt, lf)
        } else {
            (lf, lt)
        };
        b.thread(format!("T{i}"), move |t| {
            t.lock(first);
            t.lock(second);
            transfer_body(t, vf, vt, (i + 1) as Value);
            t.unlock(second);
            t.unlock(first);
        });
    }
    b.build()
}

/// Registers the family (8 benchmarks).
pub fn register(add: Register) {
    // Coarse lock, disjoint pairs: lazy wins.
    add(
        "accounts-coarse-disjoint2".to_string(),
        "accounts",
        "2 transfers between disjoint account pairs under one bank lock".to_string(),
        coarse("accounts-coarse-disjoint2", 4, &[(0, 1), (2, 3)]),
        Expectations::default(),
    );
    add(
        "accounts-coarse-disjoint3".to_string(),
        "accounts",
        "3 transfers between disjoint account pairs under one bank lock".to_string(),
        coarse("accounts-coarse-disjoint3", 6, &[(0, 1), (2, 3), (4, 5)]),
        Expectations::default(),
    );
    // Coarse lock, overlapping pairs: data orders mirror lock orders.
    add(
        "accounts-coarse-shared2".to_string(),
        "accounts",
        "2 transfers sharing one account under one bank lock".to_string(),
        coarse("accounts-coarse-shared2", 3, &[(0, 1), (1, 2)]),
        Expectations::default(),
    );
    add(
        "accounts-coarse-shared3".to_string(),
        "accounts",
        "3 transfers in a ring of 3 accounts under one bank lock".to_string(),
        coarse("accounts-coarse-shared3", 3, &[(0, 1), (1, 2), (2, 0)]),
        Expectations::default(),
    );
    // Fine locks, ordered acquisition: deadlock-free.
    add(
        "accounts-fine-ordered2".to_string(),
        "accounts",
        "2 overlapping transfers, per-account locks in account order".to_string(),
        fine("accounts-fine-ordered2", 3, &[(0, 1), (2, 1)], true),
        Expectations::default(),
    );
    add(
        "accounts-fine-ordered3".to_string(),
        "accounts",
        "3 ring transfers, per-account locks in account order".to_string(),
        fine("accounts-fine-ordered3", 3, &[(0, 1), (1, 2), (2, 0)], true),
        Expectations::default(),
    );
    // Fine locks, unordered acquisition: the classic transfer deadlock.
    add(
        "accounts-fine-deadlock2".to_string(),
        "accounts",
        "opposing transfers with per-account locks in transfer order (deadlocks)".to_string(),
        fine("accounts-fine-deadlock2", 2, &[(0, 1), (1, 0)], false),
        Expectations {
            may_deadlock: true,
            ..Expectations::default()
        },
    );
    add(
        "accounts-fine-deadlock3".to_string(),
        "accounts",
        "3 ring transfers with per-account locks in transfer order (deadlocks)".to_string(),
        fine(
            "accounts-fine-deadlock3",
            3,
            &[(0, 1), (1, 2), (2, 0)],
            false,
        ),
        Expectations {
            may_deadlock: true,
            ..Expectations::default()
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer};

    #[test]
    fn coarse_disjoint_collapses_under_lazy() {
        let p = coarse("t", 4, &[(0, 1), (2, 3)]);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_lazy_hbrs, 1);
        assert_eq!(stats.unique_hbrs, 2);
        assert_eq!(stats.unique_states, 1, "disjoint transfers commute");
    }

    #[test]
    fn unordered_fine_locking_deadlocks() {
        let p = fine("t", 2, &[(0, 1), (1, 0)], false);
        let stats = Dpor::default().explore(&p, &ExploreConfig::with_limit(10_000));
        assert!(stats.deadlocks > 0, "DPOR must find the transfer deadlock");
    }

    #[test]
    fn ordered_fine_locking_never_deadlocks() {
        let p = fine("t", 3, &[(0, 1), (1, 2), (2, 0)], true);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.deadlocks, 0);
        assert_eq!(
            stats.unique_states, 1,
            "ring transfers commute arithmetically"
        );
    }
}
