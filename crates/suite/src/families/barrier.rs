//! Spin barrier over a mutex-protected counter.
//!
//! Each thread increments the arrival counter under the lock, then spins
//! (bounded) reading the counter until everyone has arrived, and finally
//! performs its post-barrier write to a private slot. The counter itself
//! is shared mutable data, so the arrival orders stay distinguishable, but
//! the post-barrier phase is disjoint — a mixed-profile benchmark.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// `n` threads, one barrier; each thread spins at most `spins` times.
pub fn spin_barrier(n: usize, spins: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("barrier-{n}"));
    let m = b.mutex("barrier");
    let arrived = b.var("arrived", 0);
    let after = b.var_array("after", n, 0);
    #[allow(clippy::needless_range_loop)] // i is the thread id, not just an index
    for i in 0..n {
        let out = after[i];
        b.thread(format!("T{i}"), move |t| {
            let rc = t.alloc_reg();
            // Arrive.
            t.with_lock(m, |t| {
                t.load(rc, arrived);
                t.add(rc, rc, 1);
                t.store(arrived, rc);
            });
            // Wait for the others (bounded; give up silently if starved —
            // the post-write still happens, recording how far we saw).
            let go = t.label();
            let give_up = t.label();
            for _ in 0..spins {
                t.load(rc, arrived);
                t.ge(rc, rc, n as Value);
                t.branch_if(rc, go);
            }
            t.jump(give_up);
            t.bind(go);
            t.store(out, (i + 1) as Value);
            t.bind(give_up);
            t.set(rc, 0);
        });
    }
    b.build()
}

/// Registers the family (4 benchmarks).
pub fn register(add: Register) {
    for (n, spins) in [(2, 1), (2, 2), (3, 1), (3, 2)] {
        add(
            format!("barrier-{n}-s{spins}"),
            "barrier",
            format!("{n}-thread spin barrier with {spins} bounded wait probes"),
            spin_barrier(n, spins),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{Dpor, ExploreConfig, Explorer};

    #[test]
    fn barrier_never_deadlocks() {
        let stats =
            Dpor::default().explore(&spin_barrier(2, 2), &ExploreConfig::with_limit(50_000));
        assert_eq!(stats.deadlocks, 0);
        assert!(stats.schedules > 0);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn some_thread_can_pass_the_barrier() {
        use lazylocks::DfsEnumeration;
        // In the all-arrive-then-spin schedule everyone passes; in eager
        // schedules early threads give up. Multiple states exist.
        let stats =
            DfsEnumeration.explore(&spin_barrier(2, 1), &ExploreConfig::with_limit(200_000));
        assert!(!stats.limit_hit);
        assert!(stats.unique_states >= 2);
    }
}
