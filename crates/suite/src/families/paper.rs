//! The paper's Figure 1 worked example.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Reg};

/// Builds the exact program of the paper's Figure 1:
///
/// ```text
/// T1: lock(m) read(x) unlock(m) write(y)
/// T2: write(z) lock(m) read(x) unlock(m)
/// ```
///
/// Under the regular HBR this program has two equivalence classes (one per
/// lock order); under the lazy HBR it has one, and both classes reach the
/// same state — the paper's §2 observation.
pub fn figure1() -> Program {
    let mut b = ProgramBuilder::new("paper-figure1");
    let x = b.var("x", 0);
    let y = b.var("y", 0);
    let z = b.var("z", 0);
    let m = b.mutex("m");
    b.thread("T1", |t| {
        t.lock(m);
        t.load(Reg(0), x);
        t.unlock(m);
        t.store(y, Reg(0));
    });
    b.thread("T2", |t| {
        t.store(z, 1);
        t.lock(m);
        t.load(Reg(0), x);
        t.unlock(m);
    });
    b.build()
}

/// Registers the family (1 benchmark).
pub fn register(add: Register) {
    add(
        "paper-figure1".to_string(),
        "paper",
        "the worked example of the paper's Figure 1: 2 regular HBR classes, 1 lazy class"
            .to_string(),
        figure1(),
        Expectations::default(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper_class_counts() {
        use lazylocks::{DfsEnumeration, ExploreConfig, Explorer};
        let p = figure1();
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_hbrs, 2, "two lock orders");
        assert_eq!(stats.unique_lazy_hbrs, 1, "one lazy class");
        assert_eq!(stats.unique_states, 1, "a single final state");
        stats.check_inequality().unwrap();
    }
}
