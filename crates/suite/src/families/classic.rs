//! Classic systematic-concurrency-testing benchmarks.
//!
//! * **indexer** — Flanagan & Godefroid's hash-table insertion benchmark:
//!   threads insert values at hashed positions with open addressing;
//!   below a table-size threshold the probe sequences never collide and
//!   the threads are independent.
//! * **filesystem** — the other DPOR classic: threads allocate disk blocks
//!   to inodes under per-inode and per-block locks.
//! * **last-zero** — threads increment a shared array while a checker
//!   scans for the last zero entry.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// F-G's indexer, scaled down: `threads` writers insert into a `size`-slot
/// table at position `(i * stride) % size`, probing linearly on collision
/// (at most `size` probes).
pub fn indexer(threads: usize, size: usize, stride: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("indexer-t{threads}-s{size}"));
    let table = b.var_array("slot", size, 0);
    for i in 0..threads {
        let table = table.clone();
        let start = (i * stride) % size;
        b.thread(format!("T{i}"), move |t| {
            let rv = t.alloc_reg();
            let done = t.label();
            // Probe slots start, start+1, ... (unrolled, bounded by size).
            for probe in 0..size {
                let slot = table[(start + probe) % size];
                let next = t.label();
                t.load(rv, slot);
                t.branch_if(rv, next); // occupied: probe next slot
                t.store(slot, (i + 1) as Value);
                t.jump(done);
                t.bind(next);
            }
            t.bind(done);
            t.set(rv, 0);
        });
    }
    b.build()
}

/// F-G's filesystem, scaled down: thread `i` works on inode `i % inodes`;
/// if the inode is unassigned it searches for a free block (starting at
/// `(i * 2) % blocks`) under per-block locks and assigns it.
pub fn filesystem(threads: usize, inodes: usize, blocks: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("fs-t{threads}-i{inodes}-b{blocks}"));
    let inode_locks = b.mutex_array("li", inodes);
    let block_locks = b.mutex_array("lb", blocks);
    let inode = b.var_array("inode", inodes, 0);
    let busy = b.var_array("busy", blocks, 0);
    for i in 0..threads {
        let ii = i % inodes;
        let li = inode_locks[ii];
        let vi = inode[ii];
        let block_locks = block_locks.clone();
        let busy = busy.clone();
        b.thread(format!("T{i}"), move |t| {
            let rv = t.alloc_reg();
            let done = t.label();
            t.lock(li);
            t.load(rv, vi);
            t.branch_if(rv, done); // inode already assigned
            for probe in 0..blocks {
                let bix = (i * 2 + probe) % blocks;
                let (lb, vb) = (block_locks[bix], busy[bix]);
                let next = t.label();
                t.lock(lb);
                t.load(rv, vb);
                t.branch_if(rv, next); // block busy: try next
                t.store(vb, 1);
                t.store(vi, (bix + 1) as Value);
                t.unlock(lb);
                t.jump(done);
                t.bind(next);
                t.unlock(lb);
            }
            t.bind(done);
            t.unlock(li);
            t.set(rv, 0);
        });
    }
    b.build()
}

/// Last-zero: `threads` incrementers do `a[i] = a[i-1] + 1` while a checker
/// scans the array backwards for the last zero.
pub fn last_zero(threads: usize, cells: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("lastzero-t{threads}-n{cells}"));
    let a = b.var_array("a", cells, 0);
    let found = b.var("found", -1);
    {
        let a = a.clone();
        b.thread("checker", move |t| {
            let rv = t.alloc_reg();
            let ri = t.alloc_reg();
            let done = t.label();
            for i in (0..cells).rev() {
                let next = t.label();
                t.load(rv, a[i]);
                t.branch_if(rv, next);
                t.set(ri, i as Value);
                t.store(found, ri);
                t.jump(done);
                t.bind(next);
            }
            t.bind(done);
            t.set(rv, 0);
            t.set(ri, 0);
        });
    }
    for tix in 1..=threads {
        let a = a.clone();
        let src = (tix - 1).min(cells - 1);
        let dst = tix.min(cells - 1);
        b.thread(format!("inc{tix}"), move |t| {
            let rv = t.alloc_reg();
            t.load(rv, a[src]);
            t.add(rv, rv, 1);
            t.store(a[dst], rv);
            t.set(rv, 0);
        });
    }
    b.build()
}

/// Registers the family (12 benchmarks: 4 indexer + 4 filesystem + 4
/// last-zero).
pub fn register(add: Register) {
    for (threads, size, stride) in [(2, 2, 0), (2, 4, 2), (3, 4, 2), (3, 3, 1)] {
        add(
            format!("indexer-t{threads}-s{size}"),
            "classic",
            format!("F-G indexer: {threads} writers into a {size}-slot table (stride {stride})"),
            indexer(threads, size, stride),
            Expectations::default(),
        );
    }
    for (threads, inodes, blocks) in [(2, 1, 2), (2, 2, 2), (3, 2, 2), (3, 2, 3)] {
        add(
            format!("fs-t{threads}-i{inodes}-b{blocks}"),
            "classic",
            format!("F-G filesystem: {threads} threads, {inodes} inodes, {blocks} blocks"),
            filesystem(threads, inodes, blocks),
            Expectations::default(),
        );
    }
    for (threads, cells) in [(1, 2), (2, 2), (2, 3), (3, 3)] {
        add(
            format!("lastzero-t{threads}-n{cells}"),
            "classic",
            format!("last-zero: {threads} incrementers over {cells} cells plus a checker"),
            last_zero(threads, cells),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer};

    #[test]
    fn indexer_without_collisions_is_independent() {
        // 2 threads, 4 slots, stride 2: probe sequences start at 0 and 2
        // and never collide.
        let p = indexer(2, 4, 2);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_states, 1, "disjoint slots: one outcome");
        assert_eq!(stats.unique_hbrs, 1, "no conflicts at all");
    }

    #[test]
    fn indexer_with_collisions_has_orderings() {
        // 2 threads, 2 slots, stride 0: both start at slot 0.
        let p = indexer(2, 2, 0);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert!(stats.unique_states >= 2, "who wins slot 0 differs");
        stats.check_inequality().unwrap();
    }

    #[test]
    fn filesystem_assigns_without_deadlock() {
        let p = filesystem(2, 2, 2);
        let stats = Dpor::default().explore(&p, &ExploreConfig::with_limit(50_000));
        assert_eq!(stats.deadlocks, 0);
        assert!(stats.schedules > 0);
    }

    #[test]
    fn last_zero_checker_outcomes_depend_on_interleaving() {
        let p = last_zero(2, 2);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(200_000));
        assert!(!stats.limit_hit);
        assert!(stats.unique_states >= 2);
        stats.check_inequality().unwrap();
    }
}
