//! Dining philosophers.
//!
//! Philosopher `i` takes fork `i` then fork `(i+1) % n`, "eats" (writes a
//! private plate variable), and puts the forks back. The **naive** variant
//! deadlocks when everyone holds their left fork; the **ordered** variant
//! breaks the cycle by making the last philosopher take forks in the
//! opposite order (the textbook fix).
//!
//! Because eating only touches private plates, *all* complete schedules
//! reach the same state and the lazy HBR collapses the fork-acquisition
//! orders — philosophers are among the strongest below-diagonal points in
//! Figure 2, while still exercising deadlock detection.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// `n` philosophers; `ordered` applies the deadlock-avoiding fix.
pub fn philosophers(n: usize, ordered: bool) -> Program {
    let kind = if ordered { "ordered" } else { "naive" };
    let mut b = ProgramBuilder::new(format!("philosophers-{kind}-{n}"));
    let forks = b.mutex_array("fork", n);
    let plates = b.var_array("plate", n, 0);
    for i in 0..n {
        let left = forks[i];
        let right = forks[(i + 1) % n];
        let plate = plates[i];
        let (first, second) = if ordered && i == n - 1 {
            (right, left)
        } else {
            (left, right)
        };
        b.thread(format!("P{i}"), move |t| {
            t.lock(first);
            t.lock(second);
            t.store(plate, (i + 1) as Value); // eat
            t.unlock(second);
            t.unlock(first);
        });
    }
    b.build()
}

/// Registers the family (6 benchmarks).
pub fn register(add: Register) {
    for n in [2, 3, 4] {
        add(
            format!("philosophers-naive-{n}"),
            "philosophers",
            format!("{n} dining philosophers, naive fork order (deadlocks)"),
            philosophers(n, false),
            Expectations {
                may_deadlock: true,
                ..Expectations::default()
            },
        );
    }
    for n in [2, 3, 4] {
        add(
            format!("philosophers-ordered-{n}"),
            "philosophers",
            format!("{n} dining philosophers, ordered fork acquisition (deadlock-free)"),
            philosophers(n, true),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer};

    #[test]
    fn naive_deadlocks_and_ordered_does_not() {
        for n in [2, 3] {
            let naive = Dpor::default()
                .explore(&philosophers(n, false), &ExploreConfig::with_limit(50_000));
            assert!(naive.deadlocks > 0, "naive {n} philosophers must deadlock");
            let ordered =
                DfsEnumeration.explore(&philosophers(n, true), &ExploreConfig::with_limit(200_000));
            assert!(!ordered.limit_hit);
            assert_eq!(ordered.deadlocks, 0, "ordered {n} must be deadlock-free");
        }
    }

    #[test]
    fn complete_schedules_share_one_lazy_class() {
        // Eating writes private plates: every complete schedule reaches the
        // same state, and the lazy HBR sees a single class among completed
        // (non-deadlocked) executions of the ordered variant.
        let stats =
            DfsEnumeration.explore(&philosophers(2, true), &ExploreConfig::with_limit(200_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_states, 1);
        assert_eq!(stats.unique_lazy_hbrs, 1);
        assert!(stats.unique_hbrs > 1, "fork orders stay distinct regularly");
    }
}
