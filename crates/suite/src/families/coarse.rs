//! Coarse-grained locking: one global mutex guarding everything.
//!
//! Four sub-patterns spanning the lazy-HBR benefit axis:
//!
//! * **disjoint** — every thread touches its own variable inside the
//!   critical section. All lock orders reach the same state; the lazy HBR
//!   collapses them to one class (big wins in Figure 2).
//! * **mixed** — locked disjoint slots plus an unprotected racy shared
//!   counter: lock-order diversity collapses lazily while the racy counter
//!   keeps many lazy classes alive (the Figure 3 profile).
//! * **readonly** — every thread only reads shared data inside the
//!   critical section. Same collapse as disjoint.
//! * **shared** — every thread mutates the *same* counter. Every lock
//!   order is also a data order, so regular and lazy class counts
//!   coincide (diagonal points).

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// One global lock; thread `i` increments its own variable `rounds` times.
pub fn disjoint(threads: usize, rounds: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("coarse-disjoint-t{threads}-r{rounds}"));
    let m = b.mutex("global");
    let slots = b.var_array("slot", threads, 0);
    for (i, &slot) in slots.iter().enumerate() {
        b.thread(format!("T{i}"), |t| {
            let r = t.alloc_reg();
            t.repeat(rounds, |t, _| {
                t.with_lock(m, |t| {
                    t.load(r, slot);
                    t.add(r, r, 1);
                    t.store(slot, r);
                });
            });
            t.set(r, 0);
        });
    }
    b.build()
}

/// One global lock over disjoint slots **plus** an unprotected racy
/// increment of a shared counter after the critical section. The lock
/// orders are invisible to the lazy HBR while the racy counter keeps the
/// lazy class count high — the profile where, under a binding schedule
/// budget, lazy HBR caching reaches more distinct lazy classes than
/// regular HBR caching (the paper's Figure 3 effect).
pub fn disjoint_racy(threads: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("coarse-mixed-t{threads}"));
    let m = b.mutex("global");
    let shared = b.var("shared", 0);
    let slots = b.var_array("slot", threads, 0);
    for (i, &slot) in slots.iter().enumerate() {
        b.thread(format!("T{i}"), |t| {
            let r = t.alloc_reg();
            t.with_lock(m, |t| {
                t.load(r, slot);
                t.add(r, r, 1);
                t.store(slot, r);
            });
            // Unprotected read-modify-write: rich lazy-class structure.
            t.load(r, shared);
            t.add(r, r, 1);
            t.store(shared, r);
            t.set(r, 0);
        });
    }
    b.build()
}

/// One global lock; every thread reads the shared configuration and keeps
/// a private copy (registers normalised away afterwards).
pub fn readonly(threads: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("coarse-readonly-t{threads}"));
    let m = b.mutex("global");
    let config = b.var("config", 42);
    let outs = b.var_array("out", threads, 0);
    for (i, &out) in outs.iter().enumerate() {
        b.thread(format!("T{i}"), |t| {
            let r = t.alloc_reg();
            t.with_lock(m, |t| {
                t.load(r, config);
            });
            t.store(out, r);
            t.set(r, 0);
        });
    }
    b.build()
}

/// One global lock; every thread increments the *same* counter.
pub fn shared(threads: usize, rounds: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("coarse-shared-t{threads}-r{rounds}"));
    let m = b.mutex("global");
    let counter = b.var("counter", 0);
    for i in 0..threads {
        b.thread(format!("T{i}"), |t| {
            let r = t.alloc_reg();
            t.repeat(rounds, |t, _| {
                t.with_lock(m, |t| {
                    t.load(r, counter);
                    t.add(r, r, (i + 1) as Value);
                    t.store(counter, r);
                });
            });
            t.set(r, 0);
        });
    }
    b.build()
}

/// Registers the family (18 benchmarks: 4 disjoint + 4 mixed + 4 readonly
/// + 6 shared).
pub fn register(add: Register) {
    for (threads, rounds) in [(2, 1), (3, 1), (4, 1), (5, 1)] {
        add(
            format!("coarse-disjoint-t{threads}-r{rounds}"),
            "coarse",
            format!(
                "{threads} threads each increment a private slot {rounds}x under one global lock"
            ),
            disjoint(threads, rounds),
            Expectations::default(),
        );
    }
    for threads in [3, 4, 5, 6] {
        add(
            format!("coarse-mixed-t{threads}"),
            "coarse",
            format!("{threads} threads: locked disjoint slots plus a racy shared counter"),
            disjoint_racy(threads),
            Expectations::default(),
        );
    }
    for threads in [2, 3, 4, 5] {
        add(
            format!("coarse-readonly-t{threads}"),
            "coarse",
            format!("{threads} threads read shared config under one global lock"),
            readonly(threads),
            Expectations::default(),
        );
    }
    for (threads, rounds) in [(2, 1), (2, 2), (3, 1), (3, 2), (4, 1), (4, 2)] {
        add(
            format!("coarse-shared-t{threads}-r{rounds}"),
            "coarse",
            format!("{threads} threads add distinct amounts to one counter {rounds}x under one global lock"),
            shared(threads, rounds),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{DfsEnumeration, ExploreConfig, Explorer, HbrCaching};

    #[test]
    fn disjoint_has_single_lazy_class() {
        let p = disjoint(2, 1);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_states, 1);
        assert_eq!(stats.unique_lazy_hbrs, 1);
        assert_eq!(stats.unique_hbrs, 2, "two lock orders remain distinct");
    }

    #[test]
    fn readonly_has_single_lazy_class() {
        let p = readonly(3);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_lazy_hbrs, 1);
        assert_eq!(stats.unique_hbrs, 6, "3! lock orders");
        assert_eq!(stats.unique_states, 1);
    }

    #[test]
    fn shared_classes_coincide() {
        // Every lock order is a data order: the two relations agree.
        let p = shared(3, 1);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
        assert!(!stats.limit_hit);
        assert_eq!(stats.unique_hbrs, stats.unique_lazy_hbrs);
        // All increments commute arithmetically: one final state.
        assert_eq!(stats.unique_states, 1);
    }

    #[test]
    fn lazy_caching_wins_on_disjoint() {
        let p = disjoint(3, 1);
        let config = ExploreConfig::with_limit(100_000);
        let lazy = HbrCaching::lazy().explore(&p, &config);
        let regular = HbrCaching::regular().explore(&p, &config);
        assert!(lazy.schedules < regular.schedules);
        assert_eq!(lazy.unique_states, regular.unique_states);
    }
}
