//! Work queue: a locked claim index over disjoint work items.
//!
//! Workers repeatedly claim the next item index under the queue lock, then
//! process "their" item (a write to that item's slot) *outside* the lock.
//! Claiming is shared-state mutation (diagonal-ish), but processing is
//! disjoint — the interleavings of processing steps collapse under the
//! lazy HBR, making this family a moderate below-diagonal case.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// `workers` threads drain `items` work items; each claim round takes the
/// lock once.
pub fn work_queue(workers: usize, items: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("workqueue-w{workers}-i{items}"));
    let m = b.mutex("queue");
    let next = b.var("next", 0);
    let slots = b.var_array("item", items, 0);
    for w in 0..workers {
        let slots = slots.clone();
        b.thread(format!("W{w}"), move |t| {
            let ri = t.alloc_reg();
            let rc = t.alloc_reg();
            let done = t.label();
            // Each worker makes at most `items` claim attempts.
            for _ in 0..items {
                let no_work = t.label();
                let next_round = t.label();
                t.lock(m);
                t.load(ri, next);
                t.ge(rc, ri, items as Value);
                t.branch_if(rc, no_work);
                t.add(rc, ri, 1);
                t.store(next, rc);
                t.unlock(m);
                // Process item `ri` outside the lock (disjoint writes; the
                // guest IR has no indexed addressing, so branch over slots).
                let after = t.label();
                for (s, &slot) in slots.iter().enumerate() {
                    let skip = t.label();
                    t.eq(rc, ri, s as Value);
                    t.branch_if_zero(rc, skip);
                    t.store(slot, (w + 1) as Value);
                    t.jump(after);
                    t.bind(skip);
                }
                t.bind(after);
                t.jump(next_round);
                // Queue drained: release the lock and stop claiming.
                t.bind(no_work);
                t.unlock(m);
                t.jump(done);
                t.bind(next_round);
            }
            t.bind(done);
            t.set(ri, 0);
            t.set(rc, 0);
        });
    }
    b.build()
}

/// Registers the family (3 benchmarks).
pub fn register(add: Register) {
    for (workers, items) in [(2, 2), (2, 3), (3, 2)] {
        add(
            format!("workqueue-w{workers}-i{items}"),
            "workqueue",
            format!("{workers} workers drain {items} disjoint work items via a locked index"),
            work_queue(workers, items),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{Dpor, ExploreConfig, Explorer, HbrCaching};

    #[test]
    fn queue_drains_without_deadlock() {
        let stats = Dpor::default().explore(&work_queue(2, 2), &ExploreConfig::with_limit(50_000));
        assert_eq!(stats.deadlocks, 0);
        assert!(stats.schedules > 0);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn lazy_caching_wins_via_disjoint_processing() {
        let p = work_queue(2, 2);
        let config = ExploreConfig::with_limit(100_000);
        let lazy = HbrCaching::lazy().explore(&p, &config);
        let regular = HbrCaching::regular().explore(&p, &config);
        assert!(lazy.schedules <= regular.schedules);
        assert_eq!(lazy.unique_states, regular.unique_states);
    }
}
