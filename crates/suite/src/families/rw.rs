//! Readers/writers built from a plain mutex and a reader count.
//!
//! Readers enter by incrementing `readers` under the mutex, read the data
//! unlocked, and decrement on exit. Writers retry (bounded) until they see
//! `readers == 0` while holding the mutex, then write *inside* the critical
//! section. This is the classic hand-rolled RW protocol found in the kind
//! of open-source code the paper's corpus contains.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// `readers` reader threads, `writers` writer threads over one data cell.
/// Writers retry at most `retries` times.
pub fn readers_writers(readers: usize, writers: usize, retries: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("rw-r{readers}-w{writers}"));
    let m = b.mutex("guard");
    let reader_count = b.var("readers", 0);
    let data = b.var("data", 0);
    let seen = b.var_array("seen", readers, -1);

    #[allow(clippy::needless_range_loop)] // i is the thread id, not just an index
    for i in 0..readers {
        let out = seen[i];
        b.thread(format!("R{i}"), move |t| {
            let rc = t.alloc_reg();
            let rv = t.alloc_reg();
            // Enter.
            t.with_lock(m, |t| {
                t.load(rc, reader_count);
                t.add(rc, rc, 1);
                t.store(reader_count, rc);
            });
            // Read outside the lock (protected by the protocol).
            t.load(rv, data);
            t.store(out, rv);
            // Exit.
            t.with_lock(m, |t| {
                t.load(rc, reader_count);
                t.sub(rc, rc, 1);
                t.store(reader_count, rc);
            });
            t.set(rc, 0);
            t.set(rv, 0);
        });
    }
    for i in 0..writers {
        b.thread(format!("W{i}"), move |t| {
            let rc = t.alloc_reg();
            let rv = t.alloc_reg();
            let done = t.label();
            for _ in 0..retries {
                let retry = t.label();
                t.lock(m);
                t.load(rc, reader_count);
                t.branch_if(rc, retry); // readers active: back off
                t.load(rv, data);
                t.add(rv, rv, (i + 1) as Value);
                t.store(data, rv);
                t.unlock(m);
                t.jump(done);
                t.bind(retry);
                t.unlock(m);
            }
            t.bind(done);
            t.set(rc, 0);
            t.set(rv, 0);
        });
    }
    b.build()
}

/// Registers the family (5 benchmarks).
pub fn register(add: Register) {
    for (readers, writers, retries) in [(1, 1, 2), (2, 1, 2), (1, 2, 2), (2, 2, 2), (3, 1, 2)] {
        add(
            format!("rw-r{readers}-w{writers}"),
            "rw",
            format!(
                "{readers} reader(s), {writers} writer(s) over a hand-rolled RW protocol \
                 with {retries} writer retries"
            ),
            readers_writers(readers, writers, retries),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{Dpor, ExploreConfig, Explorer};

    #[test]
    fn protocol_terminates_without_deadlock() {
        let p = readers_writers(2, 1, 2);
        let stats = Dpor::default().explore(&p, &ExploreConfig::with_limit(50_000));
        assert!(stats.schedules > 0);
        assert_eq!(stats.deadlocks, 0);
        stats.check_inequality().unwrap();
    }

    #[test]
    fn reader_sees_initial_or_written_value() {
        use lazylocks::{DfsEnumeration, ExploreConfig};
        // With one reader and one writer the reader's `seen` is 0 or 1.
        let p = readers_writers(1, 1, 2);
        let stats = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(200_000));
        assert!(!stats.limit_hit);
        // States differ in `seen`/`data` combinations; at least 2 states
        // (reader before vs after writer), and no bugs.
        assert!(stats.unique_states >= 2);
        assert_eq!(stats.deadlocks, 0);
    }
}
