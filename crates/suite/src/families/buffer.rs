//! Bounded producer/consumer ring buffer guarded by one mutex.
//!
//! Producers and consumers retry a bounded number of times when the buffer
//! is full/empty (bounded retries keep every execution finite, which the
//! exhaustive engines require). The buffer state (`count`, slots) is shared
//! mutable data, so most lock orders are also data orders — these
//! benchmarks sit near the diagonal, with modest lazy wins from the retry
//! interleavings.

use super::Register;
use crate::registry::Expectations;
use lazylocks_model::{Program, ProgramBuilder, Value};

/// A ring of `capacity` slots; `producers` threads each try to put one
/// item, `consumers` threads each try to take one. Every full/empty retry
/// re-enters the critical section at most `retries` times.
pub fn bounded_buffer(
    capacity: usize,
    producers: usize,
    consumers: usize,
    retries: usize,
) -> Program {
    let mut b = ProgramBuilder::new(format!("buffer-c{capacity}-p{producers}-c{consumers}"));
    let m = b.mutex("buf");
    let count = b.var("count", 0);
    let head = b.var("head", 0);
    let tail = b.var("tail", 0);
    let slots = b.var_array("slot", capacity, 0);
    let consumed = b.var_array("consumed", consumers, -1);

    for i in 0..producers {
        let slots = slots.clone();
        b.thread(format!("P{i}"), move |t| {
            let rc = t.alloc_reg();
            let rp = t.alloc_reg();
            let done = t.label();
            for _ in 0..retries {
                let next_try = t.label();
                t.lock(m);
                t.load(rc, count);
                t.ge(rp, rc, capacity as Value);
                t.branch_if(rp, next_try); // full: unlock and retry
                                           // slot[tail % capacity] = item; tail++; count++.
                t.load(rp, tail);
                // Compute tail % capacity into rp (capacity is a power of
                // two in the registry; modulo keeps it general).
                t.bin(rp, lazylocks_model::BinOp::Rem, rp, capacity as Value);
                // Store to the selected slot: guest IR has no indexed
                // addressing, so emit a branch ladder over the slots.
                let after = t.label();
                for (s, &slot) in slots.iter().enumerate() {
                    let skip = t.label();
                    let rs = t.alloc_reg();
                    t.eq(rs, rp, s as Value);
                    t.branch_if_zero(rs, skip);
                    t.store(slot, (i + 1) as Value);
                    t.jump(after);
                    t.bind(skip);
                    t.set(rs, 0);
                }
                t.bind(after);
                t.load(rp, tail);
                t.add(rp, rp, 1);
                t.store(tail, rp);
                t.load(rc, count);
                t.add(rc, rc, 1);
                t.store(count, rc);
                t.unlock(m);
                t.jump(done);
                t.bind(next_try);
                t.unlock(m);
            }
            t.bind(done);
            t.set(rc, 0);
            t.set(rp, 0);
        });
    }

    #[allow(clippy::needless_range_loop)] // i is the thread id, not just an index
    for i in 0..consumers {
        let slots = slots.clone();
        let out = consumed[i];
        b.thread(format!("C{i}"), move |t| {
            let rc = t.alloc_reg();
            let rp = t.alloc_reg();
            let rv = t.alloc_reg();
            let done = t.label();
            for _ in 0..retries {
                let next_try = t.label();
                t.lock(m);
                t.load(rc, count);
                t.branch_if_zero(rc, next_try); // empty: unlock and retry
                t.load(rp, head);
                t.bin(rp, lazylocks_model::BinOp::Rem, rp, capacity as Value);
                let after = t.label();
                for (s, &slot) in slots.iter().enumerate() {
                    let skip = t.label();
                    let rs = t.alloc_reg();
                    t.eq(rs, rp, s as Value);
                    t.branch_if_zero(rs, skip);
                    t.load(rv, slot);
                    t.jump(after);
                    t.bind(skip);
                    t.set(rs, 0);
                }
                t.bind(after);
                t.load(rp, head);
                t.add(rp, rp, 1);
                t.store(head, rp);
                t.load(rc, count);
                t.sub(rc, rc, 1);
                t.store(count, rc);
                t.unlock(m);
                t.store(out, rv);
                t.jump(done);
                t.bind(next_try);
                t.unlock(m);
            }
            t.bind(done);
            t.set(rc, 0);
            t.set(rp, 0);
            t.set(rv, 0);
        });
    }
    b.build()
}

/// Registers the family (6 benchmarks).
pub fn register(add: Register) {
    for (capacity, producers, consumers, retries) in [
        (1, 1, 1, 2),
        (1, 2, 1, 2),
        (1, 1, 2, 2),
        (2, 1, 1, 2),
        (2, 2, 1, 2),
        (2, 1, 2, 2),
    ] {
        add(
            format!("buffer-c{capacity}-p{producers}x{consumers}"),
            "buffer",
            format!(
                "bounded ring (capacity {capacity}) with {producers} producer(s) and \
                 {consumers} consumer(s), {retries} bounded retries"
            ),
            bounded_buffer(capacity, producers, consumers, retries),
            Expectations::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazylocks::{Dpor, ExploreConfig, Explorer};

    #[test]
    fn single_producer_consumer_terminates_cleanly() {
        let p = bounded_buffer(1, 1, 1, 2);
        let stats = Dpor::default().explore(&p, &ExploreConfig::with_limit(50_000));
        assert!(stats.schedules > 0);
        assert_eq!(stats.deadlocks, 0, "retries never block inside the lock");
        stats.check_inequality().unwrap();
    }

    #[test]
    fn lazy_classes_never_exceed_regular() {
        for (c, pr, co) in [(1, 1, 1), (2, 1, 1), (1, 2, 1)] {
            let p = bounded_buffer(c, pr, co, 2);
            let stats = Dpor::default().explore(&p, &ExploreConfig::with_limit(20_000));
            assert!(stats.unique_lazy_hbrs <= stats.unique_hbrs);
        }
    }
}
