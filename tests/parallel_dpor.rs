//! Differential equivalence of the work-stealing DPOR engine.
//!
//! The parallel driver must explore **the same reduced tree** as the
//! sequential engines: for the sleep-set-free modes the explored set is
//! the least fixpoint of a deterministic closure (initial picks plus
//! race-driven backtrack insertions, both pure functions of the trace
//! prefix), so worker count and steal interleavings must not change the
//! terminal-state set, the HBR fingerprint set, or even the schedule
//! count. This suite pins that on two benchmarks of *every* suite family,
//! at one and several workers, for both the regular and the lazy
//! reduction — plus cancellation consistency when a token fires mid-run.
//!
//! CI runs this suite explicitly with the multi-worker cells enabled
//! (workers ∈ {1, 2, 4} below), so steal-path regressions cannot hide
//! behind a single-threaded default.

use lazylocks::{ExploreConfig, ExploreSession, ExploreStats, Observer, Progress, Verdict};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Schedule budget per cell: big enough that every selected benchmark's
/// reduced tree completes (cells that do hit it are skipped, and a floor
/// asserts enough cells remain).
const LIMIT: usize = 30_000;

/// Benchmarks per family under test (the first two of each family, by
/// id — every family is represented, mirroring `golden_stats.rs`).
const PER_FAMILY: usize = 2;

fn selected_benchmarks() -> Vec<lazylocks_suite::Benchmark> {
    let mut taken: BTreeMap<&'static str, usize> = BTreeMap::new();
    lazylocks_suite::all()
        .into_iter()
        .filter(|b| {
            let n = taken.entry(b.family).or_insert(0);
            *n += 1;
            *n <= PER_FAMILY
        })
        .collect()
}

/// Runs `spec` and returns its terminal-state and regular-HBR fingerprint
/// sets plus the stats — `None` when the budget or run cap truncated the
/// exploration (no complete set to compare).
fn fingerprint_sets(
    program: &lazylocks_model::Program,
    spec: &str,
) -> Option<(BTreeSet<u128>, BTreeSet<u128>, ExploreStats)> {
    let mut config = ExploreConfig::with_limit(LIMIT);
    config.collect_state_witnesses = true;
    let outcome = ExploreSession::new(program)
        .with_config(config)
        .progress_every(0)
        .run_spec(spec)
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
    if outcome.stats.limit_hit || outcome.stats.truncated_runs > 0 {
        return None;
    }
    let states = outcome
        .stats
        .state_witnesses
        .iter()
        .map(|(fp, _)| *fp)
        .collect();
    let hbrs = outcome
        .stats
        .hbr_witnesses
        .iter()
        .map(|(fp, _)| *fp)
        .collect();
    Some((states, hbrs, outcome.stats))
}

/// The shared body of both per-reduction tests.
fn assert_parallel_matches_sequential(seq_spec: &str, reduction: &str) {
    let mut compared = 0usize;
    let mut families: BTreeSet<&'static str> = BTreeSet::new();
    for bench in selected_benchmarks() {
        let Some((seq_states, seq_hbrs, seq_stats)) = fingerprint_sets(&bench.program, seq_spec)
        else {
            continue; // tree too large for the differential budget
        };
        for workers in [1usize, 2, 4] {
            let spec = format!("parallel(reduction={reduction}, workers={workers})");
            let (par_states, par_hbrs, par_stats) = fingerprint_sets(&bench.program, &spec)
                .unwrap_or_else(|| {
                    panic!("{}: {spec} truncated where {seq_spec} finished", bench.name)
                });
            assert_eq!(
                par_states, seq_states,
                "{} ({spec}): terminal-state set differs from {seq_spec}",
                bench.name
            );
            assert_eq!(
                par_hbrs, seq_hbrs,
                "{} ({spec}): HBR fingerprint set differs from {seq_spec}",
                bench.name
            );
            assert_eq!(
                par_stats.schedules, seq_stats.schedules,
                "{} ({spec}): explored a different number of schedules",
                bench.name
            );
            assert_eq!(
                (par_stats.deadlocks > 0, par_stats.faulted_schedules > 0),
                (seq_stats.deadlocks > 0, seq_stats.faulted_schedules > 0),
                "{} ({spec}): bug classes differ",
                bench.name
            );
            assert_eq!(par_stats.workers, workers as u32);
            assert!(par_stats.subtrees_stolen >= 1);
            par_stats.check_inequality().unwrap();
        }
        compared += 1;
        families.insert(bench.family);
    }
    assert!(
        compared >= 20 && families.len() >= 12,
        "differential floor: compared {compared} benchmarks across {} families",
        families.len()
    );
}

#[test]
fn parallel_dpor_matches_sequential_dpor_on_every_family() {
    assert_parallel_matches_sequential("dpor", "dpor");
}

#[test]
fn parallel_lazy_dpor_matches_sequential_lazy_dpor_on_every_family() {
    assert_parallel_matches_sequential("lazy-dpor", "lazy");
}

#[test]
fn parallel_dpor_sleep_mode_keeps_bug_parity() {
    // The sleep-set mode's explored set is claim-order dependent (see the
    // module docs of `parallel_dpor`): only bug parity is promised, and
    // pinned here against the sequential sleep-set engine's own parity
    // with ground truth.
    for bench in selected_benchmarks() {
        let Some((_, _, seq)) = fingerprint_sets(&bench.program, "dpor(sleep=true)") else {
            continue;
        };
        let Some((_, _, par)) = fingerprint_sets(
            &bench.program,
            "parallel(reduction=dpor, sleep=true, workers=2)",
        ) else {
            panic!("{}: parallel sleep mode truncated", bench.name);
        };
        assert_eq!(
            (par.deadlocks > 0, par.faulted_schedules > 0),
            (seq.deadlocks > 0, seq.faulted_schedules > 0),
            "{}: parallel sleep mode lost bug parity",
            bench.name
        );
    }
}

#[test]
fn cancellation_mid_run_is_consistent() {
    // An observer votes to stop after a few progress ticks while several
    // workers are mid-subtree (and mid-steal): the merged stats must
    // record the cancellation, the verdict must be Cancelled, and the
    // engine must have stopped well short of the full tree.
    struct StopAfter(AtomicUsize);
    impl Observer for StopAfter {
        fn on_progress(&self, _: &Progress) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn should_stop(&self) -> bool {
            self.0.load(Ordering::Relaxed) >= 3
        }
    }

    // Bug-free (a bug would win the verdict over the cancellation) with a
    // schedule space far too large to finish before the vote lands.
    let program = {
        let mut b = lazylocks_model::ProgramBuilder::new("wide");
        let x = b.var("x", 0);
        for i in 0..6 {
            b.thread(format!("T{i}"), |t| {
                t.load(lazylocks_model::Reg(0), x);
                t.add(lazylocks_model::Reg(0), lazylocks_model::Reg(0), 1);
                t.store(x, lazylocks_model::Reg(0));
                t.set(lazylocks_model::Reg(0), 0);
            });
        }
        b.build()
    };
    for spec in [
        "parallel(reduction=dpor, workers=4)",
        "parallel(reduction=lazy, workers=4)",
    ] {
        let outcome = ExploreSession::new(&program)
            .with_config(ExploreConfig::with_limit(usize::MAX))
            .progress_every(10)
            .observe(StopAfter(AtomicUsize::new(0)))
            .run_spec(spec)
            .unwrap();
        assert!(
            outcome.stats.cancelled,
            "{spec}: cancellation must be recorded"
        );
        assert_eq!(outcome.verdict, Verdict::Cancelled, "{spec}");
        assert!(
            outcome.stats.schedules < 5_000,
            "{spec}: observer vote must stop the pool early, saw {}",
            outcome.stats.schedules
        );
    }

    // A pre-cancelled token stops the pool before any schedule completes.
    let session = ExploreSession::new(&program).with_config(ExploreConfig::with_limit(1_000));
    session.cancel_token().cancel();
    let outcome = session
        .run_spec("parallel(reduction=dpor, workers=4)")
        .unwrap();
    assert_eq!(outcome.verdict, Verdict::Cancelled);
    assert!(outcome.stats.cancelled);
    assert!(
        outcome.stats.schedules <= 4,
        "one in-flight leaf per worker at most"
    );
}
