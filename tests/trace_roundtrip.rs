//! End-to-end tests for the trace subsystem: JSON codec property tests
//! over deterministic corpora, artifact round trips across the benchmark
//! suite, and the explore → save → reload → replay pipeline.

use lazylocks::rng::SplitMix64;
use lazylocks::{ExploreConfig, ExploreSession, Verdict};
use lazylocks_model::{Program, ProgramBuilder, ThreadId};
use lazylocks_runtime::program_fingerprint;
use lazylocks_trace::{
    replay_against, replay_embedded, CorpusStore, Json, ReplayVerdict, TraceArtifact, TraceRecorder,
};
use std::sync::Arc;

/// Deterministic random JSON values: the property-test corpus for the
/// codec. `depth` bounds recursion so every value is finite.
fn random_json(rng: &mut SplitMix64, depth: usize) -> Json {
    let pick = if depth == 0 {
        rng.gen_range(4) // scalars only at the leaves
    } else {
        rng.gen_range(6)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(2) == 0),
        2 => {
            // Signed 64-bit integers spanning the full range.
            Json::Int(i128::from(rng.next_u64() as i64))
        }
        3 => Json::Str(random_string(rng)),
        4 => {
            let len = rng.gen_range(4);
            Json::Arr((0..len).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(4);
            Json::Obj(
                (0..len)
                    .map(|i| {
                        (
                            format!("k{i}_{}", rng.gen_range(100)),
                            random_json(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

fn random_string(rng: &mut SplitMix64) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{08}', '\u{0c}', '\u{01}', 'é',
        '∀', '🦀', '#', '{', '}', '[', ']', ',', ':',
    ];
    let len = rng.gen_range(12);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(ALPHABET.len())])
        .collect()
}

#[test]
fn json_codec_round_trips_deterministic_corpus() {
    let mut rng = SplitMix64::new(0xdead_beef);
    for case in 0..500 {
        let value = random_json(&mut rng, 4);
        let compact = value.encode();
        assert_eq!(
            Json::parse(&compact).unwrap(),
            value,
            "case {case}: compact round trip of {compact}"
        );
        assert_eq!(
            Json::parse(&value.pretty()).unwrap(),
            value,
            "case {case}: pretty round trip"
        );
    }
}

#[test]
fn json_codec_round_trips_u128_fingerprints() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..200 {
        let fp = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        let v = Json::u128_hex(fp);
        let back = Json::parse(&v.encode()).unwrap();
        assert_eq!(back.as_u128_hex(), Some(fp));
    }
}

#[test]
fn json_codec_rejects_mutated_documents() {
    // Deterministic fuzzing: truncating a valid document at any byte
    // boundary must never panic, and must error (a JSON prefix is never a
    // complete document unless the whole value was a scalar prefix —
    // which our top-level object is not).
    let value = Json::obj([
        ("fingerprint", Json::u128_hex(u128::MAX)),
        (
            "arr",
            Json::Arr(vec![Json::Int(-3), Json::Str("s\"x".into())]),
        ),
    ]);
    let text = value.encode();
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        assert!(
            Json::parse(&text[..cut]).is_err(),
            "truncation at {cut} must not parse: {:?}",
            &text[..cut]
        );
    }
}

fn noisy_deadlocker() -> Program {
    let mut b = ProgramBuilder::new("noisy-abba");
    let noise = b.var("noise", 0);
    let l0 = b.mutex("l0");
    let l1 = b.mutex("l1");
    b.thread("T1", |t| {
        t.store(noise, 1);
        t.lock(l0);
        t.lock(l1);
        t.unlock(l1);
        t.unlock(l0);
    });
    b.thread("T2", |t| {
        t.store(noise, 2);
        t.lock(l1);
        t.lock(l0);
        t.unlock(l0);
        t.unlock(l1);
    });
    b.build()
}

fn temp_store(tag: &str) -> CorpusStore {
    let dir = std::env::temp_dir().join(format!(
        "lazylocks-integration-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    CorpusStore::open(dir).unwrap()
}

/// The tentpole pipeline, in-process: explore with a recorder, reload the
/// artifact from disk with no state but the file, replay, and classify.
#[test]
fn explore_save_reload_replay_reproduces() {
    let program = noisy_deadlocker();
    let store = temp_store("pipeline");
    let recorder = Arc::new(TraceRecorder::new(
        store.clone(),
        &program,
        "dpor(sleep=true)",
        3,
    ));
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(10_000).seeded(3))
        .observe_arc(recorder.clone())
        .run_spec("dpor(sleep=true)")
        .unwrap();
    assert_eq!(outcome.verdict, Verdict::BugFound);
    let (saved, errors) = recorder.finalize(&outcome.stats);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(saved.len(), 1);

    // Reload purely from the file.
    let text = std::fs::read_to_string(&saved[0].path).unwrap();
    let artifact = TraceArtifact::parse(&text).unwrap();
    assert!(artifact.minimized);
    assert_eq!(artifact.program_fingerprint, program_fingerprint(&program));

    let report = replay_embedded(&artifact).unwrap();
    assert_eq!(report.verdict, ReplayVerdict::Reproduced);
    assert_eq!(report.expected, "deadlock");

    // The same artifact against the benchmark object also reproduces.
    let report = replay_against(&artifact, &program);
    assert_eq!(report.verdict, ReplayVerdict::Reproduced);

    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn replay_detects_program_mutation() {
    let program = noisy_deadlocker();
    let store = temp_store("mutation");
    let recorder = Arc::new(TraceRecorder::new(store.clone(), &program, "dpor", 1));
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(10_000))
        .observe_arc(recorder.clone())
        .run_spec("dpor")
        .unwrap();
    let (saved, _) = recorder.finalize(&outcome.stats);
    let artifact = TraceArtifact::parse(&std::fs::read_to_string(&saved[0].path).unwrap()).unwrap();

    // Mutate the program: same shape, different initial value.
    let mutated = {
        let mut b = ProgramBuilder::new("noisy-abba");
        let noise = b.var("noise", 99);
        let l0 = b.mutex("l0");
        let l1 = b.mutex("l1");
        b.thread("T1", |t| {
            t.store(noise, 1);
            t.lock(l0);
            t.lock(l1);
            t.unlock(l1);
            t.unlock(l0);
        });
        b.thread("T2", |t| {
            t.store(noise, 2);
            t.lock(l1);
            t.lock(l0);
            t.unlock(l0);
            t.unlock(l1);
        });
        b.build()
    };
    let report = replay_against(&artifact, &mutated);
    assert_eq!(report.verdict, ReplayVerdict::ProgramChanged);
    assert!(report.details.contains("fingerprint"));

    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn artifacts_round_trip_for_every_buggy_benchmark() {
    // Every bug-bearing suite benchmark embeds, serialises and reparses
    // losslessly — the property the regression corpus depends on.
    for bench in lazylocks_suite::buggy() {
        let outcome = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(10_000).stopping_on_bug())
            .run_spec("dpor(sleep=true)")
            .unwrap();
        let Some(bug) = outcome.bugs.first() else {
            panic!("{} should produce a bug within 10k schedules", bench.name);
        };
        let artifact = TraceArtifact::from_bug(&bench.program, "dpor(sleep=true)", 0, bug);
        let back = TraceArtifact::parse(&artifact.to_json_string()).unwrap();
        assert_eq!(artifact, back, "{}", bench.name);
        let report = replay_embedded(&back).unwrap();
        assert_eq!(
            report.verdict,
            ReplayVerdict::Reproduced,
            "{}: {report}",
            bench.name
        );
    }
}

#[test]
fn corpus_dedup_is_keyed_on_bug_class_across_sessions() {
    let program = noisy_deadlocker();
    let store = temp_store("dedup");
    // Two explorations with different seeds find the same deadlock class.
    for seed in [1u64, 2] {
        let recorder = Arc::new(TraceRecorder::new(store.clone(), &program, "dfs", seed));
        let outcome = ExploreSession::new(&program)
            .with_config(
                ExploreConfig::with_limit(10_000)
                    .seeded(seed)
                    .stopping_on_bug(),
            )
            .observe_arc(recorder.clone())
            .run_spec("dfs")
            .unwrap();
        recorder.finalize(&outcome.stats);
    }
    assert_eq!(
        store.list().unwrap().len(),
        1,
        "one corpus slot per (program, bug class)"
    );
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn schedule_thread_ids_round_trip_through_artifacts() {
    // Wide programs exercise multi-digit thread ids in the schedule list.
    let mut b = ProgramBuilder::new("wide");
    let forks: Vec<_> = (0..12).map(|i| b.mutex(format!("f{i}"))).collect();
    for i in 0..12 {
        let left = forks[i];
        let right = forks[(i + 1) % 12];
        b.thread(format!("P{i}"), move |t| {
            t.lock(left);
            t.lock(right);
            t.unlock(right);
            t.unlock(left);
        });
    }
    let program = b.build();
    // A deadlocking schedule: everyone grabs their left fork.
    let schedule: Vec<ThreadId> = (0..12).map(ThreadId).collect();
    let run = lazylocks_runtime::run_schedule(&program, &schedule).unwrap();
    assert!(run.status.is_deadlock());
    let bug = lazylocks::BugReport {
        kind: lazylocks::BugKind::Deadlock {
            waiting: match run.status {
                lazylocks_runtime::RunStatus::Deadlock { waiting } => waiting,
                _ => unreachable!(),
            },
        },
        schedule,
        trace_len: run.trace.len(),
    };
    let artifact = TraceArtifact::from_bug(&program, "manual", 0, &bug);
    let back = TraceArtifact::parse(&artifact.to_json_string()).unwrap();
    assert_eq!(back.schedule, artifact.schedule);
    assert_eq!(
        replay_embedded(&back).unwrap().verdict,
        ReplayVerdict::Reproduced
    );
}
