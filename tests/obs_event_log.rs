//! `EventLog` concurrency contract: many threads emitting through the
//! same log must produce whole, non-interleaved JSON lines on stderr.
//!
//! libtest's output capture does not intercept direct `stderr()` writes,
//! and a torn line inside this process would be invisible anyway, so the
//! stream is checked from the outside: the test re-invokes its own
//! binary as a writer child (selected via an env var), pipes the child's
//! stderr, and verifies every line parses and every `(writer, seq)` pair
//! arrived exactly once and in per-writer order.

use lazylocks::obs::{EventLog, LogLevel, TraceEvent};
use lazylocks_trace::Json;
use std::process::{Command, Stdio};

const CHILD_ENV: &str = "LAZYLOCKS_EVENT_LOG_CHILD";
const WRITERS: usize = 8;
const EVENTS_PER_WRITER: usize = 250;

/// The writer half: a no-op under the normal harness run, the stress
/// child when re-invoked with [`CHILD_ENV`] set.
#[test]
fn child_writer_emits_when_invoked_as_child() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let log = EventLog::new(LogLevel::Info);
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_WRITER {
                    // A long payload widens the window a torn write
                    // would need to hit.
                    log.emit(
                        &TraceEvent::new(LogLevel::Info, "stress")
                            .field("writer", w)
                            .field("seq", i)
                            .field("payload", "x".repeat(64)),
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn concurrent_writers_produce_whole_non_interleaved_lines() {
    let out = Command::new(std::env::current_exe().unwrap())
        .args([
            "--test-threads=1",
            "--exact",
            "child_writer_emits_when_invoked_as_child",
        ])
        .env(CHILD_ENV, "1")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn writer child");
    assert!(out.status.success(), "writer child failed");
    let text = String::from_utf8(out.stderr).expect("stderr is UTF-8");

    let mut total = 0usize;
    let mut next_seq = [0usize; WRITERS];
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "torn line: {line:?}"
        );
        let v = Json::parse(line).unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
        assert_eq!(v.get("event").and_then(Json::as_str), Some("stress"));
        let w = v.get("writer").and_then(Json::as_u64).unwrap() as usize;
        let seq = v.get("seq").and_then(Json::as_u64).unwrap() as usize;
        // The stderr lock serializes whole lines, so each writer's own
        // events must arrive in emission order with none lost.
        assert_eq!(seq, next_seq[w], "writer {w} out of order or torn");
        next_seq[w] += 1;
        total += 1;
    }
    assert_eq!(total, WRITERS * EVENTS_PER_WRITER);
    assert!(next_seq.iter().all(|&n| n == EVENTS_PER_WRITER));
}
