//! Exploration-profiler contract: attribution is deterministic, agrees
//! with the exploration statistics, and resolves to real program points
//! under both the regular and lazy DPOR strategies.
//!
//! The scrub/determinism gate mirrors the metrics layer's: wall-time
//! series are time-based and get zeroed by `scrubbed()`; everything
//! else — per-site counters, per-object counters, schedules per
//! happens-before class, subtree spans, depth buckets — is a pure
//! function of the exploration order, so two runs of a deterministic
//! strategy must serialize byte-identically.

use lazylocks::obs::site;
use lazylocks::{ExploreConfig, ExploreSession, ProfileHandle};
use lazylocks_trace::{render_profile, snapshot_from_json, Json, ProfileDoc};

const LIMIT: usize = 2_000;

fn bench(name: &str) -> lazylocks_suite::Benchmark {
    lazylocks_suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

fn profiled_run(
    b: &lazylocks_suite::Benchmark,
    spec: &str,
) -> (lazylocks::obs::ProfileSnapshot, lazylocks::ExploreStats) {
    let profiler = ProfileHandle::enabled();
    let outcome = ExploreSession::new(&b.program)
        .with_config(ExploreConfig::with_limit(LIMIT).with_profile(profiler.clone()))
        .run_spec(spec)
        .unwrap_or_else(|e| panic!("{}/{spec}: {e}", b.name));
    let snap = profiler
        .snapshot()
        .expect("enabled profiler has a snapshot");
    (snap, outcome.stats)
}

/// Two fresh handles, same deterministic strategy → byte-identical
/// scrubbed JSON. This is the in-process half of the determinism gate;
/// CI repeats it across two fresh processes via `run --profile`.
#[test]
fn scrubbed_attribution_is_deterministic_across_runs() {
    let b = bench("philosophers-naive-3");
    for spec in ["dpor(sleep=true)", "lazy-dpor", "dfs", "caching"] {
        let (first, _) = profiled_run(&b, spec);
        let (second, _) = profiled_run(&b, spec);
        assert_eq!(
            first.scrubbed().to_json_string(),
            second.scrubbed().to_json_string(),
            "{spec}: scrubbed profiles diverged between identical runs"
        );
    }
}

/// The redundancy table must agree with the engine's own accounting:
/// every complete schedule lands in exactly one class per relation, and
/// the distinct-class counts are the stats' unique-HBR counts.
#[test]
fn redundancy_accounting_matches_exploration_stats() {
    let b = bench("paper-figure1");
    for spec in ["dpor(sleep=true)", "lazy-dpor"] {
        let (snap, stats) = profiled_run(&b, spec);
        assert_eq!(snap.schedules, stats.schedules as u64, "{spec}");
        assert_eq!(snap.events, stats.events, "{spec}");
        let [regular, lazy] = &snap.classes;
        assert_eq!(regular.relation, "regular");
        assert_eq!(lazy.relation, "lazy");
        assert_eq!(regular.distinct, stats.unique_hbrs as u64, "{spec}");
        assert_eq!(lazy.distinct, stats.unique_lazy_hbrs as u64, "{spec}");
        assert_eq!(regular.schedules, snap.schedules, "{spec}");
        assert_eq!(lazy.schedules, snap.schedules, "{spec}");
        // Paper §3: #lazy HBRs ≤ #HBRs ≤ #schedules, so lazy redundancy
        // is at least regular redundancy.
        assert!(lazy.redundant() >= regular.redundant(), "{spec}");
        // The per-class top list never claims more than the totals.
        for c in &snap.classes {
            assert!(c.distinct <= c.schedules, "{}", c.relation);
            let top_sum: u64 = c.top.iter().map(|(_, n)| n).sum();
            assert!(top_sum <= c.schedules, "{}", c.relation);
        }
    }
}

/// Both paper strategies produce per-site attribution that resolves to
/// real program points, and the rendered report names them.
#[test]
fn both_strategies_attribute_races_to_sites() {
    // Contended enough that both strategies reschedule: paper-figure1's
    // two schedules give lazy-dpor nothing to attribute.
    let b = bench("philosophers-naive-3");
    for spec in ["dpor(sleep=true)", "lazy-dpor"] {
        let (snap, _) = profiled_run(&b, spec);
        assert!(!snap.sites.is_empty(), "{spec}: no site attribution");
        let races: u64 = snap.sites.iter().map(|s| s.counts[site::RACES]).sum();
        assert!(races > 0, "{spec}: no races attributed on a racy program");
        // Every site must point into the program.
        for s in &snap.sites {
            let thread = &b.program.threads()[s.thread as usize];
            assert!(
                (s.pc as usize) < thread.code.len(),
                "{spec}: site pc {} outside thread {}",
                s.pc,
                thread.name
            );
        }
        let report = render_profile(&b.program, spec, &snap);
        assert!(report.contains("hot sites"), "{spec}");
        assert!(report.contains("redundancy"), "{spec}");
        // Sites render with resolved thread names, not raw indices.
        let t0 = &b.program.threads()[0].name;
        assert!(
            report.contains(t0.as_str()),
            "{spec}: report lacks thread names"
        );
    }
}

/// Sleep-blocked subtrees are charged to the event that closed them,
/// and the total agrees with the engine's own prune counter.
#[test]
fn sleep_blocks_match_engine_prune_counter() {
    // A racy shared counter under sleep-set DPOR: the dense var
    // conflicts put whole subtrees to sleep, unlike lock-only programs
    // where the initial representative is always awake.
    let b = bench("coarse-mixed-t3");
    let (snap, stats) = profiled_run(&b, "dpor(sleep=true)");
    let sleeps: u64 = snap
        .sites
        .iter()
        .map(|s| s.counts[site::SLEEP_BLOCKS])
        .sum();
    assert_eq!(sleeps, stats.sleep_prunes as u64);
    assert!(
        stats.sleep_prunes > 0,
        "expected sleep-set pruning on philosophers"
    );
}

/// Subtree spans and depth buckets account for every schedule once.
#[test]
fn span_and_depth_profiles_cover_all_schedules() {
    let b = bench("workqueue-w2-i3");
    let (snap, stats) = profiled_run(&b, "dpor(sleep=true)");
    assert!(snap.span_count > 0);
    assert!(!snap.spans.is_empty());
    // Spans are the hottest prefixes — most schedules first.
    for w in snap.spans.windows(2) {
        assert!(w[0].schedules >= w[1].schedules);
    }
    let span_scheds: u64 = snap.spans.iter().map(|s| s.schedules).sum();
    assert!(span_scheds <= snap.schedules);
    // Depth buckets partition the schedules exactly.
    let depth_scheds: u64 = snap.depth.iter().map(|d| d.schedules).sum();
    let depth_events: u64 = snap.depth.iter().map(|d| d.events).sum();
    assert_eq!(depth_scheds, stats.schedules as u64);
    assert_eq!(depth_events, stats.events);
    // Last bucket is +Inf, the rest ascend.
    assert_eq!(snap.depth.last().unwrap().le, None);
}

/// A disabled handle records nothing and yields no snapshot — the
/// zero-overhead configuration every existing caller gets by default.
#[test]
fn disabled_profiler_yields_no_snapshot_and_does_not_perturb() {
    let b = bench("paper-figure1");
    let off = ProfileHandle::disabled();
    let outcome_off = ExploreSession::new(&b.program)
        .with_config(ExploreConfig::with_limit(LIMIT).with_profile(off.clone()))
        .run_spec("dpor(sleep=true)")
        .unwrap();
    assert!(off.snapshot().is_none());
    let (_, stats_on) = profiled_run(&b, "dpor(sleep=true)");
    // Instrumentation must never change what is explored.
    assert_eq!(outcome_off.stats.schedules, stats_on.schedules);
    assert_eq!(outcome_off.stats.events, stats_on.events);
    assert_eq!(outcome_off.stats.unique_hbrs, stats_on.unique_hbrs);
}

/// The trace-layer document round-trips the scrubbed snapshot exactly:
/// embed → serialize → parse → decode → re-serialize is the identity.
#[test]
fn profile_doc_roundtrips_scrubbed_snapshot() {
    let b = bench("philosophers-naive-2");
    let (snap, _) = profiled_run(&b, "lazy-dpor");
    let scrubbed = snap.scrubbed();
    let doc = ProfileDoc::new(&b.program, "lazy-dpor", &scrubbed);
    let text = doc.to_json_string();
    let parsed = ProfileDoc::parse(&text).expect("parse saved profile doc");
    assert_eq!(parsed.program_name, b.program.name());
    assert_eq!(parsed.strategy_spec, "lazy-dpor");
    let decoded = parsed.snapshot().expect("decode embedded snapshot");
    assert_eq!(decoded.to_json_string(), scrubbed.to_json_string());
    // The generic JSON path agrees with the dedicated decoder.
    let json = Json::parse(&text).unwrap();
    let via_json = snapshot_from_json(json.get("profile").unwrap()).unwrap();
    assert_eq!(via_json, decoded);
    // And the report renders from the round-tripped document alone.
    let report = parsed.render().expect("render from parsed doc");
    assert_eq!(report, render_profile(&b.program, "lazy-dpor", &scrubbed));
}
