//! Steady-state allocation accounting for the pooled DPOR engines.
//!
//! The frame pool's contract: once the free list has warmed up along the
//! first full-depth descent, a DPOR step allocates **zero** frame bodies —
//! `Executor::assign_from` / `ClockEngine::assign_from` recycle retired
//! buffers instead of cloning afresh. This binary installs a counting
//! global allocator and proves the contract end-to-end: exploring
//! thousands of tree edges must cost a near-constant number of
//! allocations (engine setup, index/trace growth, collector-set resizes),
//! not the ~7 heap clones per step the unpooled engine paid.
//!
//! The whole check lives in one `#[test]` so no concurrently running test
//! can pollute the counter (this is the only test in this binary).

use lazylocks::{Dpor, ExploreConfig, Explorer, LazyDpor, MetricsHandle, ProfileHandle};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(
    f: impl FnOnce() -> lazylocks::ExploreStats,
) -> (u64, lazylocks::ExploreStats) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let stats = f();
    (ALLOCS.load(Ordering::Relaxed) - before, stats)
}

#[test]
fn steady_state_steps_allocate_zero_frame_bodies() {
    // Five racy counters: every pair of operations conflicts, so DPOR
    // cannot reduce the tree and the budget below yields tens of
    // thousands of steps. The program is bug-free (buggy leaves allocate
    // a BugReport, which would obscure the frame-body accounting).
    let program = {
        let mut b = lazylocks_model::ProgramBuilder::new("racy-counters");
        let x = b.var("x", 0);
        for i in 0..5 {
            b.thread(format!("T{i}"), |t| {
                t.load(lazylocks_model::Reg(0), x);
                t.add(lazylocks_model::Reg(0), lazylocks_model::Reg(0), 1);
                t.store(x, lazylocks_model::Reg(0));
                t.set(lazylocks_model::Reg(0), 0);
            });
        }
        b.build()
    };
    // The contract must hold with the metrics registry live too: shard
    // operations are relaxed adds on pre-sized slabs, so instrumentation
    // adds setup allocations (the shard slab) but nothing per step.
    // ...and with the exploration profiler live: site attribution is
    // relaxed adds on dense slabs that grow to the program's dimensions
    // once, and span tracking uses packed u64 keys, so profiling too
    // must add setup allocations but nothing per step.
    let configs = [
        ("", ExploreConfig::with_limit(3_000)),
        (
            "+metrics",
            ExploreConfig::with_limit(3_000).with_metrics(MetricsHandle::enabled()),
        ),
        (
            "+profile",
            ExploreConfig::with_limit(3_000).with_profile(ProfileHandle::enabled()),
        ),
    ];

    for (suffix, config) in &configs {
        for (label, explorer) in [
            ("dpor", Box::new(Dpor::default()) as Box<dyn Explorer>),
            ("lazy-dpor", Box::new(LazyDpor::default())),
        ] {
            let label = format!("{label}{suffix}");
            let (allocs, stats) = allocations_during(|| explorer.explore(&program, config));
            // Enough steady-state work that per-step allocations would
            // dominate: each pool hit is one recycled frame body (one
            // executor + one clock engine that were NOT heap-cloned).
            assert!(
                stats.frames_pooled > 5_000,
                "{label}: expected a deep run, got {} pool hits",
                stats.frames_pooled
            );
            // The unpooled engine paid ~7 allocations per edge (executor
            // buffers + clock slab); the pooled engine's total must stay
            // far below one allocation per edge — setup plus amortised
            // growth only.
            assert!(
                allocs < stats.frames_pooled / 4,
                "{label}: {allocs} allocations for {} pooled frames — \
                 steady-state steps must not allocate frame bodies",
                stats.frames_pooled
            );
        }
    }
}
