//! Bug reporting and deterministic replay across the corpus, plus
//! race-detector integration.

use lazylocks::{detect_races, Dpor, ExploreConfig, ExploreSession, Explorer, RandomWalk};
use lazylocks_runtime::{run_schedule, RunStatus};

#[test]
fn every_reported_bug_replays_deterministically() {
    for bench in lazylocks_suite::all() {
        if !bench.expect.may_deadlock && !bench.expect.may_fail_assert {
            continue;
        }
        let stats = Dpor::default().explore(
            &bench.program,
            &ExploreConfig::with_limit(20_000).stopping_on_bug(),
        );
        let bug = stats
            .first_bug
            .unwrap_or_else(|| panic!("{}: flagged benchmark produced no bug", bench.name));
        let replay = bug
            .reproduce(&bench.program)
            .unwrap_or_else(|e| panic!("{}: bug schedule infeasible: {e}", bench.name));
        if bug.is_deadlock() {
            assert!(
                replay.status.is_deadlock(),
                "{}: replay lost the deadlock",
                bench.name
            );
        } else {
            assert!(
                !replay.faults.is_empty(),
                "{}: replay lost the fault",
                bench.name
            );
        }
    }
}

#[test]
fn random_and_systematic_find_the_same_bug_classes() {
    // For the deadlocking benchmarks, a seeded random walk budget usually
    // stumbles on the deadlock too; where it does, the bug kind agrees.
    for name in ["philosophers-naive-2", "accounts-fine-deadlock2"] {
        let bench = lazylocks_suite::by_name(name).unwrap();
        let systematic = Dpor::default().explore(
            &bench.program,
            &ExploreConfig::with_limit(20_000).stopping_on_bug(),
        );
        assert!(systematic.first_bug.as_ref().unwrap().is_deadlock());
        let random = RandomWalk.explore(
            &bench.program,
            &ExploreConfig::with_limit(2_000).stopping_on_bug().seeded(5),
        );
        if let Some(bug) = &random.first_bug {
            assert!(bug.is_deadlock(), "{name}: bug kinds disagree");
        }
    }
}

#[test]
fn race_detector_flags_racy_corpus_traces_and_clears_locked_ones() {
    // Flag-based protocols race by design; fully-locked coarse benchmarks
    // are race-free on every trace.
    let racy = lazylocks_suite::by_name("store-buffer").unwrap();
    let run = run_schedule(&racy.program, &[]).unwrap();
    assert_eq!(run.status, RunStatus::Completed);
    assert!(
        !detect_races(&racy.program, &run.trace).is_empty(),
        "store-buffer must race"
    );

    let locked = lazylocks_suite::by_name("coarse-shared-t2-r1").unwrap();
    let run = run_schedule(&locked.program, &[]).unwrap();
    assert!(
        detect_races(&locked.program, &run.trace).is_empty(),
        "coarse-locked counter must be race-free"
    );
}

#[test]
fn stop_on_bug_reduces_work_everywhere_bugs_exist() {
    for bench in lazylocks_suite::all() {
        if !bench.expect.may_deadlock {
            continue;
        }
        let full = Dpor::default().explore(&bench.program, &ExploreConfig::with_limit(20_000));
        let stopped = Dpor::default().explore(
            &bench.program,
            &ExploreConfig::with_limit(20_000).stopping_on_bug(),
        );
        assert!(
            stopped.schedules <= full.schedules,
            "{}: stop-on-bug did more work",
            bench.name
        );
        assert!(stopped.found_bug(), "{}", bench.name);
    }
}

#[test]
fn bug_schedules_are_minimal_prefixes_of_their_runs() {
    // The recorded schedule stops at the buggy terminal: replaying it and
    // extending it deterministically reaches the same outcome.
    let bench = lazylocks_suite::by_name("philosophers-naive-3").unwrap();
    let stats = ExploreSession::new(&bench.program)
        .with_config(ExploreConfig::with_limit(20_000).stopping_on_bug())
        .run_spec("dpor(sleep=true)")
        .unwrap()
        .stats;
    let bug = stats.first_bug.unwrap();
    assert_eq!(
        bug.schedule.len(),
        bug.trace_len,
        "every deadlock-path step produced an event"
    );
}
