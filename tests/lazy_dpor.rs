//! Empirical evaluation of the lazy-DPOR prototype (the paper's §4 future
//! work): how much reduction it buys and where it loses soundness, measured
//! against exhaustive ground truth.

use lazylocks::{Dpor, ExploreConfig, Explorer, LazyDpor, LazyDporStyle};
use lazylocks_integration::exhaustible_benchmarks;

#[test]
fn lock_acquisition_style_preserves_states_on_the_exhaustible_corpus() {
    // The headline empirical claim for the prototype: on every benchmark
    // we can fully enumerate, lazy DPOR (lock-acquisition style) reaches
    // every distinct terminal state.
    let mut reductions = Vec::new();
    for (bench, truth) in exhaustible_benchmarks(6_000) {
        let lazy = LazyDpor::default().explore(&bench.program, &ExploreConfig::with_limit(200_000));
        assert!(!lazy.limit_hit, "{}", bench.name);
        assert_eq!(
            lazy.unique_states, truth.unique_states,
            "{}: lazy DPOR lost states",
            bench.name
        );
        assert_eq!(
            lazy.deadlocks > 0,
            truth.deadlocks > 0,
            "{}: lazy DPOR missed/invented deadlocks",
            bench.name
        );
        let regular = Dpor::default().explore(&bench.program, &ExploreConfig::with_limit(200_000));
        reductions.push((bench.name.clone(), regular.schedules, lazy.schedules));
    }
    // The prototype must actually *win* somewhere.
    let wins = reductions.iter().filter(|(_, r, l)| l < r).count();
    assert!(
        wins >= 5,
        "lazy DPOR should beat DPOR on several benchmarks; wins: {wins} of {}",
        reductions.len()
    );
}

#[test]
fn vars_only_style_documented_unsoundness_is_measurable() {
    // The aggressive style misses deadlocks by construction; quantify it.
    let mut missed_deadlocks = 0;
    let mut subjects = 0;
    for (bench, truth) in exhaustible_benchmarks(6_000) {
        if truth.deadlocks == 0 {
            continue;
        }
        subjects += 1;
        let stats = LazyDpor {
            style: LazyDporStyle::VarsOnly,
        }
        .explore(&bench.program, &ExploreConfig::with_limit(200_000));
        if stats.deadlocks == 0 {
            missed_deadlocks += 1;
        }
    }
    assert!(subjects > 0, "corpus must contain deadlocking benchmarks");
    assert!(
        missed_deadlocks > 0,
        "vars-only lazy DPOR should demonstrably miss deadlocks"
    );
}

#[test]
fn aggregate_schedule_counts_shrink_with_laziness() {
    // Per-benchmark monotonicity is not a theorem (the prototype trades
    // sleep sets for soundness, and deadlock programs can cost it extra
    // schedules), but across the exhaustible corpus the aggregate ordering
    // must hold: vars-only ≤ lock-acquisitions, and lock-acquisitions
    // comfortably below regular DPOR.
    let mut total_regular = 0usize;
    let mut total_lazy = 0usize;
    let mut total_vars = 0usize;
    for (bench, _) in exhaustible_benchmarks(3_000) {
        let config = ExploreConfig::with_limit(200_000);
        total_regular += Dpor::default().explore(&bench.program, &config).schedules;
        total_lazy += LazyDpor::default()
            .explore(&bench.program, &config)
            .schedules;
        total_vars += LazyDpor {
            style: LazyDporStyle::VarsOnly,
        }
        .explore(&bench.program, &config)
        .schedules;
    }
    assert!(
        total_vars <= total_lazy,
        "aggregate: vars-only {total_vars} > lock-acquisitions {total_lazy}"
    );
    assert!(
        total_lazy < total_regular,
        "aggregate: lazy {total_lazy} not below regular {total_regular}"
    );
}

#[test]
fn flagship_reduction_on_coarse_disjoint() {
    // The pattern §1 motivates: coarse lock, disjoint data. Regular DPOR
    // explores n! lock orders; lazy DPOR explores 1.
    for n in [2, 3, 4] {
        let bench = lazylocks_suite::by_name(&format!("coarse-disjoint-t{n}-r1")).unwrap();
        let config = ExploreConfig::with_limit(200_000);
        let regular = Dpor::default().explore(&bench.program, &config);
        let lazy = LazyDpor::default().explore(&bench.program, &config);
        let factorial: usize = (1..=n).product();
        assert_eq!(
            regular.schedules, factorial,
            "n={n}: DPOR explores n! orders"
        );
        assert_eq!(lazy.schedules, 1, "n={n}: lazy DPOR explores one");
        assert_eq!(lazy.unique_states, regular.unique_states);
    }
}
