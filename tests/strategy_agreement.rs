//! Cross-strategy soundness: on every benchmark whose schedule space can
//! be fully enumerated, the reduced strategies must find exactly the
//! distinct terminal states (and relation classes) that exhaustive DFS
//! finds.

use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer, HbrCaching, ParallelDfs};
use lazylocks_integration::exhaustible_benchmarks;

const GROUND_LIMIT: usize = 6_000;

#[test]
fn dpor_agrees_with_dfs_on_exhaustible_benchmarks() {
    let subjects = exhaustible_benchmarks(GROUND_LIMIT);
    assert!(
        subjects.len() >= 25,
        "expected a healthy exhaustible subset, got {}",
        subjects.len()
    );
    for (bench, truth) in &subjects {
        for sleep_sets in [false, true] {
            let stats = Dpor {
                sleep_sets,
                ..Dpor::default()
            }
            .explore(&bench.program, &ExploreConfig::with_limit(200_000));
            assert!(!stats.limit_hit, "{}: DPOR should finish", bench.name);
            if sleep_sets {
                // The sleep-set mode promises bug parity only (see the
                // Dpor docs for the sleep-set blocking caveat).
            } else {
                assert_eq!(
                    stats.unique_states, truth.unique_states,
                    "{}: default DPOR missed states",
                    bench.name
                );
                assert_eq!(
                    stats.unique_hbrs, truth.unique_hbrs,
                    "{}: default DPOR missed HBR classes",
                    bench.name
                );
            }
            assert_eq!(
                stats.deadlocks > 0,
                truth.deadlocks > 0,
                "{} (sleep={sleep_sets}): deadlock detection differs",
                bench.name
            );
            assert!(
                stats.schedules <= truth.schedules,
                "{} (sleep={sleep_sets}): DPOR explored more than DFS",
                bench.name
            );
        }
    }
}

#[test]
fn caching_strategies_preserve_states_when_exhaustive() {
    for (bench, truth) in exhaustible_benchmarks(GROUND_LIMIT) {
        for explorer in [HbrCaching::regular(), HbrCaching::lazy()] {
            let stats = explorer.explore(&bench.program, &ExploreConfig::with_limit(200_000));
            assert!(!stats.limit_hit, "{}: caching should finish", bench.name);
            assert_eq!(
                stats.unique_states,
                truth.unique_states,
                "{} under {}: states differ",
                bench.name,
                explorer.name()
            );
            assert!(
                stats.schedules <= truth.schedules,
                "{} under {}: more schedules than DFS",
                bench.name,
                explorer.name()
            );
        }
    }
}

#[test]
fn parallel_dfs_matches_sequential_exactly() {
    for (bench, truth) in exhaustible_benchmarks(2_000) {
        let stats =
            ParallelDfs { workers: 4 }.explore(&bench.program, &ExploreConfig::with_limit(200_000));
        assert_eq!(stats.schedules, truth.schedules, "{}", bench.name);
        assert_eq!(stats.unique_states, truth.unique_states, "{}", bench.name);
        assert_eq!(stats.unique_hbrs, truth.unique_hbrs, "{}", bench.name);
        assert_eq!(
            stats.unique_lazy_hbrs, truth.unique_lazy_hbrs,
            "{}",
            bench.name
        );
        assert_eq!(stats.events, truth.events, "{}", bench.name);
    }
}

#[test]
fn dfs_is_deterministic() {
    let bench = lazylocks_suite::by_name("coarse-shared-t2-r2").unwrap();
    let a = DfsEnumeration.explore(&bench.program, &ExploreConfig::with_limit(50_000));
    let b = DfsEnumeration.explore(&bench.program, &ExploreConfig::with_limit(50_000));
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.unique_states, b.unique_states);
    assert_eq!(a.unique_hbrs, b.unique_hbrs);
    assert_eq!(a.events, b.events);
}
