//! End-to-end coverage of the Session/Registry exploration API:
//! registry spec round-trips, malformed-spec error reporting, and
//! observer-driven deadline / cancellation stopping DFS and DPOR
//! mid-exploration.

use lazylocks::{
    CancelToken, ExploreConfig, ExploreOutcome, ExploreSession, Observer, Progress, SpecError,
    StrategyRegistry, Verdict,
};
use lazylocks_model::{Program, ProgramBuilder, Reg};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A racy counter over `threads` threads: |schedules| grows factorially,
/// far beyond any budget used here.
fn wide_program(threads: usize) -> Program {
    let mut b = ProgramBuilder::new("wide");
    let x = b.var("x", 0);
    for i in 0..threads {
        b.thread(format!("T{i}"), |t| {
            t.load(Reg(0), x);
            t.add(Reg(0), Reg(0), 1);
            t.store(x, Reg(0));
            t.set(Reg(0), 0);
        });
    }
    b.build()
}

// ---------------------------------------------------------------- registry

#[test]
fn every_registered_spec_round_trips_to_an_equivalent_factory() {
    let registry = StrategyRegistry::default();
    let program = wide_program(2);
    let config = ExploreConfig::with_limit(200);
    let specs = registry.specs();
    assert!(
        specs.len() >= 8,
        "the default registry must expose at least the 8 legacy strategies"
    );
    for spec in specs {
        // Parse → create twice: same id, same exploration results.
        let a = registry
            .create(&spec)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        let b = registry
            .create(&spec)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(a.name(), b.name(), "{spec}: unstable strategy id");
        let sa = a.explore(&program, &config);
        let sb = b.explore(&program, &config);
        assert_eq!(sa.schedules, sb.schedules, "{spec}: non-deterministic");
        assert_eq!(sa.unique_states, sb.unique_states, "{spec}");
        assert!(sa.schedules >= 1, "{spec}: explored nothing");
    }
}

#[test]
fn legacy_names_and_parameterised_specs_coexist() {
    let registry = StrategyRegistry::default();
    let program = wide_program(2);
    let config = ExploreConfig::with_limit(500);
    // A legacy alias and its parameterised canonical spelling are the same
    // strategy.
    for (alias, canonical) in [
        ("dpor-sleep", "dpor(sleep=true)"),
        ("dpor-nosleep", "dpor(sleep=false)"),
        ("lazy-caching", "caching(mode=lazy)"),
        ("lazy-dpor-vars", "lazy-dpor(style=vars)"),
    ] {
        let a = registry.create(alias).unwrap().explore(&program, &config);
        let c = registry
            .create(canonical)
            .unwrap()
            .explore(&program, &config);
        assert_eq!(a.schedules, c.schedules, "{alias} vs {canonical}");
        assert_eq!(a.unique_states, c.unique_states, "{alias} vs {canonical}");
    }
}

#[test]
fn malformed_and_unknown_specs_report_structured_errors() {
    let registry = StrategyRegistry::default();
    assert!(matches!(
        registry.create("dpor(sleep"),
        Err(SpecError::Malformed { .. })
    ));
    assert!(matches!(
        registry.create("dpor(sleep~true)"),
        Err(SpecError::Malformed { .. })
    ));
    assert!(matches!(
        registry.create("warp-drive"),
        Err(SpecError::UnknownStrategy { .. })
    ));
    assert!(matches!(
        registry.create("random(workers=3)"),
        Err(SpecError::UnknownParam { .. })
    ));
    assert!(matches!(
        registry.create("parallel(workers=many)"),
        Err(SpecError::InvalidValue { .. })
    ));
    // And the session surfaces them instead of panicking.
    let program = wide_program(2);
    let session = ExploreSession::new(&program);
    assert!(session.run_spec("warp-drive").is_err());
}

// ------------------------------------------------- deadline / cancellation

/// Asserts `outcome` was demonstrably stopped mid-exploration.
fn assert_truncated(outcome: &ExploreOutcome, limit: usize, spec: &str) {
    assert_eq!(outcome.verdict, Verdict::Cancelled, "{spec}");
    assert!(
        outcome.stats.cancelled,
        "{spec}: cancellation must be recorded in the stats"
    );
    assert!(
        !outcome.stats.limit_hit,
        "{spec}: the budget was not the stopper"
    );
    assert!(
        outcome.stats.schedules < limit,
        "{spec}: stopped before the schedule limit ({} < {limit})",
        outcome.stats.schedules
    );
}

#[test]
fn deadline_stops_dfs_mid_exploration_before_the_schedule_limit() {
    // 7 racy threads: 21 visible events, far more schedules than any
    // wall-clock deadline this short allows.
    let program = wide_program(7);
    let limit = 50_000_000;
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(limit))
        .deadline(Duration::from_millis(30))
        .run_spec("dfs")
        .unwrap();
    assert_truncated(&outcome, limit, "dfs");
    assert!(
        outcome.stats.schedules > 0,
        "the deadline should allow some progress"
    );
}

#[test]
fn deadline_stops_dpor_mid_exploration_before_the_schedule_limit() {
    let program = wide_program(7);
    let limit = 50_000_000;
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(limit))
        .deadline(Duration::from_millis(30))
        .run_spec("dpor")
        .unwrap();
    assert_truncated(&outcome, limit, "dpor");
}

#[test]
fn cancel_token_stops_dfs_and_dpor_from_an_observer() {
    // An observer that pulls its own session's cancellation token after
    // three progress ticks — the cooperative-cancellation loop closed.
    struct TripWire {
        token: CancelToken,
        ticks: AtomicUsize,
    }
    impl Observer for TripWire {
        fn on_progress(&self, _: &Progress) {
            if self.ticks.fetch_add(1, Ordering::Relaxed) + 1 >= 3 {
                self.token.cancel();
            }
        }
    }

    let program = wide_program(6);
    let limit = 10_000_000;
    for spec in ["dfs", "dpor"] {
        let session = ExploreSession::new(&program)
            .with_config(ExploreConfig::with_limit(limit))
            .progress_every(50);
        let wire = TripWire {
            token: session.cancel_token(),
            ticks: AtomicUsize::new(0),
        };
        let outcome = session.observe(wire).run_spec(spec).unwrap();
        assert_truncated(&outcome, limit, spec);
        assert!(
            outcome.stats.schedules >= 150,
            "{spec}: three ticks of 50 schedules happened first (saw {})",
            outcome.stats.schedules
        );
        assert!(
            outcome.stats.schedules < 1_000,
            "{spec}: cancellation must bite promptly (saw {})",
            outcome.stats.schedules
        );
    }
}

#[test]
fn progress_observer_sees_monotone_schedule_counts() {
    struct Record(Mutex<Vec<usize>>);
    impl Observer for Record {
        fn on_progress(&self, p: &Progress) {
            self.0.lock().unwrap().push(p.schedules);
        }
    }
    let program = wide_program(4);
    let record = Arc::new(Record(Mutex::new(Vec::new())));
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(600))
        .progress_every(100)
        .observe_arc(record.clone())
        .run_spec("dfs")
        .unwrap();
    assert_eq!(outcome.verdict, Verdict::LimitHit);
    let ticks = record.0.lock().unwrap();
    assert_eq!(*ticks, vec![100, 200, 300, 400, 500, 600]);
}

#[test]
fn outcome_collects_multiple_distinct_bugs() {
    // AB-BA deadlock plus an assertion failure: the outcome's bug list
    // carries both kinds, first_bug agrees with bugs[0].
    let mut b = ProgramBuilder::new("two-bugs");
    let l0 = b.mutex("a");
    let l1 = b.mutex("b");
    let x = b.var("x", 0);
    b.thread("T1", |t| {
        t.lock(l0);
        t.lock(l1);
        t.unlock(l1);
        t.unlock(l0);
        t.store(x, 1);
    });
    b.thread("T2", |t| {
        t.lock(l1);
        t.lock(l0);
        t.unlock(l0);
        t.unlock(l1);
    });
    b.thread("T3", |t| {
        t.load(Reg(0), x);
        t.assert_true(Reg(0), "x must already be set");
    });
    let program = b.build();
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(100_000))
        .run_spec("dfs")
        .unwrap();
    assert_eq!(outcome.verdict, Verdict::BugFound);
    assert!(outcome.bugs.len() >= 2, "both bug kinds must be collected");
    assert!(outcome.bugs.iter().any(|b| b.is_deadlock()));
    assert!(outcome.bugs.iter().any(|b| !b.is_deadlock()));
    assert_eq!(outcome.stats.first_bug.as_ref().unwrap(), &outcome.bugs[0]);
    // Every collected bug replays deterministically.
    for bug in &outcome.bugs {
        bug.reproduce(&program).expect("bug schedules replay");
    }
}

#[test]
fn pre_cancelled_bounded_session_reports_cancelled_not_clean() {
    // Regression: a bounded run cancelled before its first wave used to
    // come back as a default (clean) stats block.
    let program = wide_program(4);
    let session = ExploreSession::new(&program).with_config(ExploreConfig::with_limit(10_000));
    session.cancel_token().cancel();
    let outcome = session.run_spec("bounded").unwrap();
    assert_eq!(outcome.verdict, Verdict::Cancelled);
    assert!(outcome.stats.cancelled);
    assert_eq!(outcome.stats.schedules, 0);
}

#[test]
fn bounded_strategy_runs_through_the_session() {
    let program = wide_program(3);
    let outcome = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(10_000))
        .run_spec("bounded(start=0, step=1, max=2)")
        .unwrap();
    assert_eq!(outcome.strategy_id, "bounded");
    assert!(outcome.stats.schedules > 0);
}
