//! End-to-end reproduction of every claim the paper makes about its
//! Figure 1 example (§2).

use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, ExploreSession, Explorer, HbrCaching};
use lazylocks_hbr::{replay_events, HbBuilder, HbMode};
use lazylocks_model::{ThreadId, VisibleKind};
use lazylocks_runtime::run_schedule;
use std::collections::HashSet;

fn figure1() -> lazylocks_model::Program {
    lazylocks_suite::by_name("paper-figure1").unwrap().program
}

/// "T1 first" — the schedule drawn in Figure 1.
fn figure1_schedule() -> Vec<ThreadId> {
    vec![
        ThreadId(0),
        ThreadId(0),
        ThreadId(0),
        ThreadId(0),
        ThreadId(1),
        ThreadId(1),
        ThreadId(1),
        ThreadId(1),
    ]
}

#[test]
fn figure1_trace_matches_the_paper() {
    let p = figure1();
    let run = run_schedule(&p, &figure1_schedule()).unwrap();
    let kinds: Vec<String> = run
        .trace
        .iter()
        .map(|e| format!("{}:{}", e.thread(), e.kind))
        .collect();
    assert_eq!(
        kinds,
        vec![
            "t0:lock(m0)",
            "t0:read(v0)",
            "t0:unlock(m0)",
            "t0:write(v1)",
            "t1:write(v2)",
            "t1:lock(m0)",
            "t1:read(v0)",
            "t1:unlock(m0)",
        ]
    );
}

#[test]
fn figure1_hbr_has_exactly_the_drawn_inter_thread_edge() {
    // The figure shows one inter-thread edge: T1's unlock(m) → T2's
    // lock(m) (plus transitivity). In particular the writes to y and z are
    // unordered.
    let p = figure1();
    let run = run_schedule(&p, &figure1_schedule()).unwrap();
    let rel = HbBuilder::from_trace(HbMode::Regular, &p, &run.trace);
    let ix = |thread: u16, kind: VisibleKind| {
        run.trace
            .iter()
            .position(|e| e.thread() == ThreadId(thread) && e.kind == kind)
            .unwrap()
    };
    let unlock_t1 = ix(0, VisibleKind::Unlock(lazylocks_model::MutexId(0)));
    let lock_t2 = ix(1, VisibleKind::Lock(lazylocks_model::MutexId(0)));
    let write_y = ix(0, VisibleKind::Write(lazylocks_model::VarId(1)));
    let write_z = ix(1, VisibleKind::Write(lazylocks_model::VarId(2)));
    assert!(rel.happens_before(unlock_t1, lock_t2), "the mutex edge");
    assert!(rel.concurrent(write_y, write_z), "y and z writes unordered");

    // "The write to z can be swapped with the event above it several more
    // times": z's write is concurrent with everything T1 does.
    for i in 0..4 {
        assert!(rel.concurrent(i, write_z), "event {i} vs write(z)");
    }
}

#[test]
fn figure1_swapping_unordered_events_preserves_the_state() {
    // Theorem 2.1 demonstrated exactly as the paper narrates it: swap the
    // unordered writes and replay.
    let p = figure1();
    let run = run_schedule(&p, &figure1_schedule()).unwrap();
    let rel = HbBuilder::from_trace(HbMode::Regular, &p, &run.trace);
    let lins = rel.linearizations(1_000);
    assert!(lins.complete());
    // Two 4-event chains with the single cross edge unlock₁ → lock₂.
    // Counting by the number k of T1 events before T2's lock (k ∈ {3, 4}):
    // k=3 gives 4·C(3,2)=12 interleavings, k=4 gives 5·C(2,2)=5 — 17 total.
    assert_eq!(lins.len(), 17);
    let mut states = HashSet::new();
    for order in lins.orders() {
        let replay = replay_events(&p, order).expect("Theorem 2.1");
        assert_eq!(&replay.trace, order);
        states.insert(replay.state);
    }
    assert_eq!(states.len(), 1);
}

#[test]
fn figure1_por_needs_two_schedules_regular_one_lazy() {
    let p = figure1();
    // "a POR technique would only need to consider two schedules": the
    // sleep-set refinement reaches exactly that ideal; the class-exact
    // default needs one redundant probe but still finds the two classes.
    let ideal = Dpor {
        sleep_sets: true,
        ..Dpor::default()
    }
    .explore(&p, &ExploreConfig::with_limit(10_000));
    assert_eq!(ideal.schedules, 2);
    let dpor = Dpor::default().explore(&p, &ExploreConfig::with_limit(10_000));
    assert!(dpor.schedules <= 3);
    assert_eq!(dpor.unique_hbrs, 2);
    // "a partial-order algorithm would only need to explore a single
    // schedule" with the lazy HBR.
    let lazy = HbrCaching::lazy().explore(&p, &ExploreConfig::with_limit(10_000));
    assert_eq!(lazy.schedules, 1);
    assert_eq!(lazy.unique_lazy_hbrs, 1);
    // And indeed one state overall.
    let dfs = DfsEnumeration.explore(&p, &ExploreConfig::with_limit(100_000));
    assert!(!dfs.limit_hit);
    assert_eq!(dfs.unique_states, 1);
}

#[test]
fn figure1_lazy_linearization_infeasibility_example() {
    // "a schedule in which T2's lock event occurs between T1's lock and
    // unlock events cannot be executed".
    let p = figure1();
    // T1 locks, then T2 write(z) + lock attempt.
    let bad = vec![ThreadId(0), ThreadId(1), ThreadId(1)];
    let err = run_schedule(&p, &bad).unwrap_err();
    assert_eq!(err.position, 2, "T2's lock is the blocked step");
    assert_eq!(err.thread, ThreadId(1));
}

#[test]
fn figure1_every_strategy_reaches_the_single_state() {
    let p = figure1();
    let session = ExploreSession::new(&p).with_config(ExploreConfig::with_limit(10_000));
    for spec in [
        "dfs",
        "dpor(sleep=true)",
        "caching",
        "caching(mode=lazy)",
        "lazy-dpor",
        "parallel(workers=2)",
    ] {
        let outcome = session.run_spec(spec).unwrap();
        assert_eq!(outcome.stats.unique_states, 1, "{spec}");
        assert!(!outcome.found_bug(), "{spec}");
    }
}
