//! Crash-safe checkpoint/resume, full stack: engine → `CheckpointWriter`
//! → disk → `load_checkpoint` → a resumed session, compared against an
//! uninterrupted exploration of the same program.
//!
//! The core engine pins the in-memory parity (`dpor.rs` unit tests);
//! these tests pin the *durable* round trip — the serialized document on
//! disk carries everything a fresh process needs to finish the search
//! with identical statistics.

use lazylocks::{ExploreConfig, ExploreSession, ExploreStats};
use lazylocks_trace::{load_checkpoint, CheckpointWriter, CHECKPOINT_FILE};
use std::path::PathBuf;
use std::sync::Arc;

const SPEC: &str = "dpor(sleep=true)";
const SEED: u64 = 7;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lazylocks-checkpoint-resume-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every deterministic field must survive the interruption; `wall_time`
/// is clock-dependent and `frames_pooled` restarts from a cold pool, so
/// both are exempt by design.
fn assert_stats_match(resumed: &ExploreStats, full: &ExploreStats) {
    assert_eq!(resumed.schedules, full.schedules);
    assert_eq!(resumed.events, full.events);
    assert_eq!(resumed.unique_states, full.unique_states);
    assert_eq!(resumed.unique_hbrs, full.unique_hbrs);
    assert_eq!(resumed.unique_lazy_hbrs, full.unique_lazy_hbrs);
    assert_eq!(resumed.max_depth, full.max_depth);
    assert_eq!(resumed.deadlocks, full.deadlocks);
    assert_eq!(resumed.faulted_schedules, full.faulted_schedules);
    assert_eq!(resumed.sleep_prunes, full.sleep_prunes);
    assert_eq!(resumed.events_compared, full.events_compared);
    assert!(!resumed.limit_hit && !resumed.cancelled);
}

#[test]
fn resuming_a_limit_interrupted_run_matches_the_uninterrupted_stats() {
    let bench = lazylocks_suite::by_name("rw-r2-w1").expect("bench exists");
    let program = &bench.program;

    let full = ExploreSession::new(program)
        .with_config(ExploreConfig::with_limit(1_000_000).seeded(SEED))
        .run_spec(SPEC)
        .unwrap()
        .stats;
    assert!(
        full.schedules > 50 && !full.limit_hit,
        "bench too shallow for an interruption test: {} schedules",
        full.schedules
    );

    // Interrupt mid-search by exhausting a half-sized budget while a
    // CheckpointWriter persists the frontier every 10 schedules — the
    // in-process stand-in for a crash.
    let dir = temp_dir("parity");
    let writer = CheckpointWriter::new(&dir, program, SPEC, SEED).unwrap();
    let interrupted = ExploreSession::new(program)
        .with_config(
            ExploreConfig::with_limit(full.schedules / 2)
                .seeded(SEED)
                .checkpointing_every(10),
        )
        .observe_arc(Arc::new(writer))
        .run_spec(SPEC)
        .unwrap()
        .stats;
    assert!(interrupted.limit_hit);
    assert!(dir.join(CHECKPOINT_FILE).is_file());

    // A fresh process loads the document, refuses mismatches, resumes.
    let doc = load_checkpoint(&dir).unwrap().unwrap();
    doc.check_matches(program, SPEC, SEED).unwrap();
    assert!(doc.state.stats.schedules <= interrupted.schedules);
    assert!(doc.state.stats.schedules > 0, "at least one checkpoint hit");

    let resumed = ExploreSession::new(program)
        .with_config(
            ExploreConfig::with_limit(1_000_000)
                .seeded(SEED)
                .resuming_from(Arc::new(doc.state)),
        )
        .run_spec(SPEC)
        .unwrap()
        .stats;
    assert_stats_match(&resumed, &full);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_checkpoint_generation_resumes_to_the_same_answer() {
    // Overwrite-in-place means only the newest generation is on disk at
    // any moment; this test replays the run once per cadence point and
    // resumes from each, so a crash at *any* moment is covered.
    let bench = lazylocks_suite::by_name("philosophers-naive-3").expect("bench exists");
    let program = &bench.program;
    let full = ExploreSession::new(program)
        .with_config(ExploreConfig::with_limit(1_000_000).seeded(SEED))
        .run_spec(SPEC)
        .unwrap()
        .stats;
    assert!(full.schedules >= 4 && !full.limit_hit);

    let dir = temp_dir("generations");
    for cut in 1..full.schedules {
        let writer = CheckpointWriter::new(&dir, program, SPEC, SEED).unwrap();
        // The engine stops *at* the limit before checkpointing that
        // schedule, so a budget of cut+1 leaves generation `cut` on disk.
        let interrupted = ExploreSession::new(program)
            .with_config(
                ExploreConfig::with_limit(cut + 1)
                    .seeded(SEED)
                    .checkpointing_every(1),
            )
            .observe_arc(Arc::new(writer))
            .run_spec(SPEC)
            .unwrap()
            .stats;
        assert!(interrupted.limit_hit, "cut {cut} did not interrupt");

        let doc = load_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(doc.state.stats.schedules, cut);
        let resumed = ExploreSession::new(program)
            .with_config(
                ExploreConfig::with_limit(1_000_000)
                    .seeded(SEED)
                    .resuming_from(Arc::new(doc.state)),
            )
            .run_spec(SPEC)
            .unwrap()
            .stats;
        assert_stats_match(&resumed, &full);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_foreign_checkpoint() {
    let fig1 = lazylocks_suite::by_name("paper-figure1").expect("bench exists");
    let dir = temp_dir("foreign");
    let writer = CheckpointWriter::new(&dir, &fig1.program, SPEC, SEED).unwrap();
    ExploreSession::new(&fig1.program)
        .with_config(
            ExploreConfig::with_limit(1_000_000)
                .seeded(SEED)
                .checkpointing_every(1),
        )
        .observe_arc(Arc::new(writer))
        .run_spec(SPEC)
        .unwrap();

    let doc = load_checkpoint(&dir).unwrap().unwrap();
    let other = lazylocks_suite::by_name("store-buffer").expect("bench exists");
    let err = doc.check_matches(&other.program, SPEC, SEED).unwrap_err();
    assert!(err.contains("program"), "{err}");
    let err = doc.check_matches(&fig1.program, "dfs", SEED).unwrap_err();
    assert!(err.contains("strategy"), "{err}");
    let err = doc
        .check_matches(&fig1.program, SPEC, SEED + 1)
        .unwrap_err();
    assert!(err.contains("seed"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
