//! Corpus-wide smoke tests: every benchmark runs under every strategy
//! without panicking, bug expectations hold, and the text format
//! round-trips every program.

use lazylocks::{ExploreConfig, ExploreSession, StrategyRegistry, Verdict};
use lazylocks_model::Program;

#[test]
fn all_79_run_under_dpor_and_caching() {
    let registry = StrategyRegistry::default();
    for bench in lazylocks_suite::all() {
        let session =
            ExploreSession::new(&bench.program).with_config(ExploreConfig::with_limit(400));
        for spec in [
            "dpor(sleep=true)",
            "caching",
            "caching(mode=lazy)",
            "lazy-dpor",
        ] {
            let stats = session.run_with(&registry, spec).unwrap().stats;
            assert!(stats.schedules > 0, "{} under {spec}", bench.name);
            assert_eq!(
                stats.truncated_runs, 0,
                "{}: corpus programs must have bounded runs",
                bench.name
            );
        }
    }
}

#[test]
fn deadlock_expectations_hold() {
    for bench in lazylocks_suite::all() {
        let outcome = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(20_000))
            .run_spec("dpor(sleep=true)")
            .unwrap();
        if bench.expect.may_deadlock {
            assert!(
                outcome.stats.deadlocks > 0,
                "{} is flagged may_deadlock but none was found",
                bench.name
            );
            assert_eq!(outcome.verdict, Verdict::BugFound, "{}", bench.name);
            assert!(
                outcome.bugs.iter().any(|b| b.is_deadlock()),
                "{}: outcome must carry the deadlock report",
                bench.name
            );
        } else {
            assert_eq!(
                outcome.stats.deadlocks, 0,
                "{} deadlocked but is not flagged",
                bench.name
            );
        }
    }
}

#[test]
fn assertion_expectations_hold() {
    for bench in lazylocks_suite::all() {
        let outcome = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(20_000))
            .run_spec("dpor(sleep=true)")
            .unwrap();
        if bench.expect.may_fail_assert {
            assert!(
                outcome.stats.faulted_schedules > 0,
                "{} is flagged may_fail_assert but no fault was found",
                bench.name
            );
            assert!(
                !outcome.bugs.is_empty(),
                "{}: outcome must carry the fault report",
                bench.name
            );
        } else {
            assert_eq!(
                outcome.stats.faulted_schedules, 0,
                "{} faulted but is not flagged",
                bench.name
            );
        }
    }
}

#[test]
fn every_benchmark_round_trips_through_the_text_format() {
    for bench in lazylocks_suite::all() {
        let source = bench.program.to_source();
        let reparsed = Program::parse(&source)
            .unwrap_or_else(|e| panic!("{}: pretty output fails to parse: {e}", bench.name));
        assert_eq!(
            bench.program, reparsed,
            "{}: text round trip changed the program",
            bench.name
        );
    }
}

#[test]
fn random_walks_cover_every_benchmark() {
    // A cheap liveness check: random scheduling completes runs everywhere.
    for bench in lazylocks_suite::all() {
        let stats = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(25).seeded(11))
            .run_spec("random")
            .unwrap()
            .stats;
        assert_eq!(stats.schedules, 25, "{}", bench.name);
        assert_eq!(stats.truncated_runs, 0, "{}", bench.name);
    }
}
