//! Corpus-wide smoke tests: every benchmark runs under every strategy
//! without panicking, bug expectations hold, and the text format
//! round-trips every program.

use lazylocks::{ExploreConfig, Strategy};
use lazylocks_model::Program;

#[test]
fn all_79_run_under_dpor_and_caching() {
    let config = ExploreConfig::with_limit(400);
    for bench in lazylocks_suite::all() {
        for strategy in [
            Strategy::Dpor { sleep_sets: true },
            Strategy::HbrCaching,
            Strategy::LazyHbrCaching,
            Strategy::LazyDpor,
        ] {
            let stats = strategy.run(&bench.program, &config);
            assert!(stats.schedules > 0, "{} under {strategy:?}", bench.name);
            assert_eq!(
                stats.truncated_runs, 0,
                "{}: corpus programs must have bounded runs",
                bench.name
            );
        }
    }
}

#[test]
fn deadlock_expectations_hold() {
    for bench in lazylocks_suite::all() {
        let stats = Strategy::Dpor { sleep_sets: true }
            .run(&bench.program, &ExploreConfig::with_limit(20_000));
        if bench.expect.may_deadlock {
            assert!(
                stats.deadlocks > 0,
                "{} is flagged may_deadlock but none was found",
                bench.name
            );
        } else {
            assert_eq!(
                stats.deadlocks, 0,
                "{} deadlocked but is not flagged",
                bench.name
            );
        }
    }
}

#[test]
fn assertion_expectations_hold() {
    for bench in lazylocks_suite::all() {
        let stats = Strategy::Dpor { sleep_sets: true }
            .run(&bench.program, &ExploreConfig::with_limit(20_000));
        if bench.expect.may_fail_assert {
            assert!(
                stats.faulted_schedules > 0,
                "{} is flagged may_fail_assert but no fault was found",
                bench.name
            );
        } else {
            assert_eq!(
                stats.faulted_schedules, 0,
                "{} faulted but is not flagged",
                bench.name
            );
        }
    }
}

#[test]
fn every_benchmark_round_trips_through_the_text_format() {
    for bench in lazylocks_suite::all() {
        let source = bench.program.to_source();
        let reparsed = Program::parse(&source)
            .unwrap_or_else(|e| panic!("{}: pretty output fails to parse: {e}", bench.name));
        assert_eq!(
            bench.program, reparsed,
            "{}: text round trip changed the program",
            bench.name
        );
    }
}

#[test]
fn random_walks_cover_every_benchmark() {
    // A cheap liveness check: random scheduling completes runs everywhere.
    for bench in lazylocks_suite::all() {
        let stats = Strategy::Random.run(&bench.program, &ExploreConfig::with_limit(25).seeded(11));
        assert_eq!(stats.schedules, 25, "{}", bench.name);
        assert_eq!(stats.truncated_runs, 0, "{}", bench.name);
    }
}
