//! Observability-layer integration tests.
//!
//! Pins the arithmetic the `/metrics` endpoint and `--metrics-json`
//! reports are built on — histogram bucket boundaries, quantile
//! interpolation, shard/snapshot merge associativity — and the
//! determinism contract: two identical explorations scrub to
//! byte-identical snapshot JSON. The cross-crate counters (replay, fuzz,
//! parallel per-worker attribution) are exercised end to end.

use lazylocks::obs::{
    MetricDef, MetricId, MetricKind, MetricValue, MetricsHandle, MetricsRegistry,
};
use lazylocks::{ExploreConfig, ExploreSession, MetricsSnapshot};
use lazylocks_fuzz::{default_oracle_specs, run_fuzz, run_fuzz_with, FuzzConfig, ShapeProfile};
use lazylocks_model::ProgramBuilder;
use lazylocks_trace::{replay_embedded_with, TraceArtifact};
use std::sync::Arc;

/// A one-histogram catalogue with round bucket bounds.
static TEST_HIST: &[MetricDef] = &[MetricDef {
    name: "test_hist",
    help: "test histogram",
    kind: MetricKind::Histogram,
    buckets: &[10, 100, 1000],
    sample_shift: 0,
    time_based: false,
    per_worker: false,
}];

const HIST: MetricId = MetricId(0);

#[test]
fn histogram_buckets_are_inclusive_upper_bounds() {
    let registry = Arc::new(MetricsRegistry::new(TEST_HIST));
    let handle = MetricsHandle::with_registry(registry);
    let shard = handle.shard();
    for v in [10, 11, 100, 1000, 1001] {
        shard.observe(HIST, v);
    }
    let snap = handle.snapshot().unwrap();
    let hist = snap.get("test_hist").unwrap();
    match &hist.total {
        MetricValue::Histogram { counts, count, sum } => {
            // `le` bounds are inclusive: 10 lands in le=10, 11 in le=100,
            // 1001 only in the implicit +Inf bucket.
            assert_eq!(counts, &[1, 2, 1]);
            assert_eq!(*count, 5);
            assert_eq!(*sum, 10 + 11 + 100 + 1000 + 1001);
        }
        other => panic!("expected a histogram, got {other:?}"),
    }
    // The Prometheus rendering is cumulative and ends at +Inf == count.
    let text = snap.to_prometheus_text();
    assert!(text.contains("test_hist_bucket{le=\"10\"} 1"), "{text}");
    assert!(text.contains("test_hist_bucket{le=\"100\"} 3"), "{text}");
    assert!(text.contains("test_hist_bucket{le=\"1000\"} 4"), "{text}");
    assert!(text.contains("test_hist_bucket{le=\"+Inf\"} 5"), "{text}");
    assert!(text.contains("test_hist_count 5"), "{text}");
}

#[test]
fn quantiles_interpolate_within_buckets() {
    let registry = Arc::new(MetricsRegistry::new(TEST_HIST));
    let handle = MetricsHandle::with_registry(registry);
    let shard = handle.shard();

    // Empty histograms have no quantiles.
    let empty = handle.snapshot().unwrap();
    assert_eq!(empty.get("test_hist").unwrap().quantile(0.5), None);

    for v in 1..=100u64 {
        shard.observe(HIST, v);
    }
    let snap = handle.snapshot().unwrap();
    let hist = snap.get("test_hist").unwrap();
    // 90 of 100 samples are ≤ 100; the median interpolates inside the
    // (10, 100] bucket, and every quantile is monotone and within range.
    let q50 = hist.quantile(0.5).unwrap();
    assert!((10.0..=100.0).contains(&q50), "median {q50}");
    let q10 = hist.quantile(0.1).unwrap();
    let q99 = hist.quantile(0.99).unwrap();
    assert!(q10 <= q50 && q50 <= q99, "{q10} / {q50} / {q99}");
    assert!(q99 <= 1000.0);
}

/// Records a fixed workload split across `shards` shards of one registry.
fn record_split(splits: &[&[u64]]) -> MetricsSnapshot {
    let registry = Arc::new(MetricsRegistry::new(TEST_HIST));
    let handle = MetricsHandle::with_registry(registry);
    for split in splits {
        let shard = handle.shard();
        for &v in *split {
            shard.observe(HIST, v);
        }
    }
    handle.snapshot().unwrap()
}

#[test]
fn shard_merge_is_grouping_independent() {
    // The same observations, grouped differently across shards, must
    // produce identical snapshots — the per-thread slabs are a pure sum.
    let one = record_split(&[&[5, 50, 500, 5000]]);
    let two = record_split(&[&[5, 50], &[500, 5000]]);
    let four = record_split(&[&[5], &[50], &[500], &[5000]]);
    assert_eq!(one, two);
    assert_eq!(two, four);
}

#[test]
fn snapshot_merge_is_associative() {
    let snap = |vals: &[u64]| record_split(&[vals]);
    let (a, b, c) = (snap(&[1, 20]), snap(&[300]), snap(&[4000, 7]));

    let mut left = MetricsSnapshot::default();
    left.merge(&a);
    left.merge(&b);
    left.merge(&c);

    let mut bc = MetricsSnapshot::default();
    bc.merge(&b);
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);

    assert_eq!(left, right);
    assert_eq!(left.get("test_hist").unwrap().total.count(), 5);
}

#[test]
fn identical_explorations_scrub_to_byte_identical_json() {
    let bench = lazylocks_suite::by_name("philosophers-naive-3").expect("bench exists");
    let explore = || {
        let handle = MetricsHandle::enabled();
        let outcome = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(500).with_metrics(handle.clone()))
            .run_spec("dpor(sleep=true)")
            .unwrap();
        (outcome.stats.schedules, handle.snapshot().unwrap())
    };
    let (schedules_a, a) = explore();
    let (schedules_b, b) = explore();
    assert_eq!(schedules_a, schedules_b);
    assert!(a.value("lazylocks_schedules_total") > 0);
    assert_eq!(
        a.value("lazylocks_schedules_total") as usize,
        schedules_a,
        "live schedules counter mirrors ExploreStats"
    );
    // The raw snapshots carry wall-clock phase timings and may differ;
    // the scrubbed snapshots must not.
    assert_eq!(a.scrubbed().to_json_string(), b.scrubbed().to_json_string());
    // Scrubbing zeroes exactly the time-based families.
    let scrubbed = a.scrubbed();
    assert_eq!(scrubbed.value("lazylocks_phase_executor_step_ns"), 0);
    assert_eq!(
        scrubbed.value("lazylocks_schedule_depth"),
        a.value("lazylocks_schedule_depth")
    );
}

#[test]
fn replay_records_attempts_and_event_volume() {
    let mut b = ProgramBuilder::new("abba-obs");
    let l0 = b.mutex("l0");
    let l1 = b.mutex("l1");
    b.thread("T1", |t| {
        t.lock(l0);
        t.lock(l1);
        t.unlock(l1);
        t.unlock(l0);
    });
    b.thread("T2", |t| {
        t.lock(l1);
        t.lock(l0);
        t.unlock(l0);
        t.unlock(l1);
    });
    let program = b.build();
    let bug = ExploreSession::new(&program)
        .with_config(ExploreConfig::with_limit(10_000).stopping_on_bug())
        .run_spec("dpor")
        .unwrap()
        .bugs
        .first()
        .cloned()
        .expect("abba deadlocks");
    let artifact = TraceArtifact::from_bug(&program, "dpor", 1, &bug);

    let handle = MetricsHandle::enabled();
    let report = replay_embedded_with(&artifact, &handle).unwrap();
    assert!(report.reproduced());
    let snap = handle.snapshot().unwrap();
    assert_eq!(snap.value("lazylocks_replays_total"), 1);
    assert!(snap.value("lazylocks_replay_events_total") > 0);
}

#[test]
fn fuzz_counts_cases_without_touching_the_report() {
    let registry = lazylocks::StrategyRegistry::default();
    let oracle = default_oracle_specs();
    let config = FuzzConfig {
        profiles: ShapeProfile::ALL.to_vec(),
        cases: 5,
        seed: 42,
        budget: 5_000,
        max_size: 2,
        shrink: true,
    };
    let cancel = lazylocks::CancelToken::new();

    let handle = MetricsHandle::enabled();
    let instrumented =
        run_fuzz_with(&config, &registry, &oracle, None, &cancel, &handle, |_| {}).unwrap();
    let plain = run_fuzz(&config, &registry, &oracle, None, &cancel, |_| {}).unwrap();

    let snap = handle.snapshot().unwrap();
    assert_eq!(snap.value("lazylocks_fuzz_cases_total"), 5);
    // Determinism contract: the report is identical with metrics on.
    assert_eq!(instrumented.cases.len(), plain.cases.len());
    for (x, y) in instrumented.cases.iter().zip(&plain.cases) {
        assert_eq!(x.fingerprint, y.fingerprint);
        assert_eq!(x.status, y.status);
        assert_eq!(x.dfs, y.dfs);
    }
}

#[test]
fn crash_safety_counters_flow_through_the_builtin_registry() {
    use lazylocks::obs::ids;
    use lazylocks_trace::{load_checkpoint, CheckpointWriter};
    use std::path::PathBuf;

    let dir: PathBuf =
        std::env::temp_dir().join(format!("lazylocks-obs-checkpoint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let bench = lazylocks_suite::by_name("paper-figure1").expect("bench exists");
    let program = &bench.program;
    const SPEC: &str = "dpor(sleep=true)";

    // A checkpointing run counts every written generation and its bytes.
    let handle = MetricsHandle::enabled();
    let writer = CheckpointWriter::new(&dir, program, SPEC, 1)
        .unwrap()
        .with_metrics(&handle);
    let outcome = ExploreSession::new(program)
        .with_config(
            ExploreConfig::with_limit(1_000_000)
                .seeded(1)
                .checkpointing_every(1)
                .with_metrics(handle.clone()),
        )
        .observe_arc(Arc::new(writer))
        .run_spec(SPEC)
        .unwrap();
    let snap = handle.snapshot().unwrap();
    assert_eq!(
        snap.value("lazylocks_checkpoints_written_total") as usize,
        outcome.stats.schedules,
        "one generation per schedule at cadence 1"
    );
    assert!(snap.value("lazylocks_checkpoint_bytes_total") > 0);

    // Resuming restores frames and counts each one.
    let doc = load_checkpoint(&dir).unwrap().unwrap();
    let resume_handle = MetricsHandle::enabled();
    ExploreSession::new(program)
        .with_config(
            ExploreConfig::with_limit(1_000_000)
                .seeded(1)
                .resuming_from(Arc::new(doc.state))
                .with_metrics(resume_handle.clone()),
        )
        .run_spec(SPEC)
        .unwrap();
    let snap = resume_handle.snapshot().unwrap();
    assert!(
        snap.value("lazylocks_resume_frames_restored_total") > 0,
        "the restored frontier was counted"
    );

    // The daemon-side recovery counter resolves through the same builtin
    // catalogue, so `GET /metrics` renders it by name.
    let recovery = MetricsHandle::enabled();
    recovery.shard().add(ids::JOBS_RECOVERED, 2);
    let snap = recovery.snapshot().unwrap();
    assert_eq!(snap.value("lazylocks_jobs_recovered_total"), 2);
    assert!(snap
        .to_prometheus_text()
        .contains("lazylocks_jobs_recovered_total 2"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_workers_keep_per_worker_breakdowns() {
    let bench = lazylocks_suite::by_name("philosophers-naive-4").expect("bench exists");
    let handle = MetricsHandle::enabled();
    let outcome = ExploreSession::new(&bench.program)
        .with_config(ExploreConfig::with_limit(2_000).with_metrics(handle.clone()))
        .run_spec("parallel(reduction=dpor, workers=4)")
        .unwrap();
    let snap = handle.snapshot().unwrap();

    assert_eq!(snap.value("lazylocks_workers"), 4);
    // The merged totals agree with the summed ExploreStats...
    assert_eq!(
        snap.value("lazylocks_subtrees_stolen_total"),
        outcome.stats.subtrees_stolen
    );
    assert_eq!(
        snap.value("lazylocks_frames_pooled_total"),
        outcome.stats.frames_pooled
    );
    assert_eq!(
        snap.value("lazylocks_schedules_total") as usize,
        outcome.stats.schedules
    );
    // ...while the snapshot still attributes work to individual workers:
    // per-worker series exist and sum back to the total.
    let schedules = snap.get("lazylocks_schedules_total").unwrap();
    assert!(
        !schedules.per_worker.is_empty(),
        "per-worker schedule series survived the merge"
    );
    let per_worker_sum: u64 = schedules.per_worker.iter().map(|(_, v)| v.count()).sum();
    assert_eq!(per_worker_sum, schedules.total.count());
    let stolen = snap.get("lazylocks_subtrees_stolen_total").unwrap();
    let stolen_sum: u64 = stolen.per_worker.iter().map(|(_, v)| v.count()).sum();
    assert_eq!(stolen_sum, stolen.total.count());
}
