//! Machine-checked versions of the paper's Theorems 2.1 and 2.2, plus the
//! counting argument from the Theorem 2.2 proof sketch, over corpus
//! programs small enough to enumerate exhaustively.

use lazylocks_hbr::{replay_events, HbBuilder, HbMode};
use lazylocks_integration::all_runs;
use lazylocks_model::VisibleKind;
use std::collections::{HashMap, HashSet};

/// Small corpus programs for the exhaustive theorem checks.
fn theorem_subjects() -> Vec<lazylocks_suite::Benchmark> {
    [
        "paper-figure1",
        "coarse-disjoint-t2-r1",
        "coarse-readonly-t2",
        "coarse-shared-t2-r1",
        "fine-t2-e2",
        "accounts-coarse-disjoint2",
        "philosophers-ordered-2",
        "store-buffer",
        "rendezvous-2",
        "indexer-t2-s2",
        "lastzero-t1-n2",
        "workqueue-w2-i2",
    ]
    .iter()
    .map(|n| lazylocks_suite::by_name(n).unwrap_or_else(|| panic!("missing benchmark {n}")))
    .collect()
}

#[test]
fn theorem_2_1_linearizations_feasible_and_state_equal() {
    // For every explored schedule: every linearization of its regular HBR
    // is feasible, re-executes the same events, and reaches the same state.
    for bench in theorem_subjects() {
        let runs = all_runs(&bench.program, 20_000)
            .unwrap_or_else(|| panic!("{} not exhaustible", bench.name));
        // Deduplicate by relation to keep the enumeration affordable.
        let mut seen = HashSet::new();
        for (trace, state) in &runs {
            let rel = HbBuilder::from_trace(HbMode::Regular, &bench.program, trace);
            if !seen.insert(rel.fingerprint()) {
                continue;
            }
            let lins = rel.linearizations(2_000);
            assert!(lins.complete(), "{}: linearization blow-up", bench.name);
            for order in lins.orders() {
                let run = replay_events(&bench.program, order).unwrap_or_else(|e| {
                    panic!("{}: Theorem 2.1 violated, infeasible: {e}", bench.name)
                });
                assert_eq!(
                    &run.trace, order,
                    "{}: linearization diverged during replay",
                    bench.name
                );
                assert_eq!(
                    &run.state, state,
                    "{}: Theorem 2.1 violated, different state",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn theorem_2_2_equal_lazy_hbr_implies_equal_state() {
    for bench in theorem_subjects() {
        let runs = all_runs(&bench.program, 20_000)
            .unwrap_or_else(|| panic!("{} not exhaustible", bench.name));
        let mut state_of: HashMap<u128, &lazylocks_runtime::StateSnapshot> = HashMap::new();
        for (trace, state) in &runs {
            let fp = HbBuilder::from_trace(HbMode::Lazy, &bench.program, trace).fingerprint();
            if let Some(prev) = state_of.insert(fp, state) {
                assert_eq!(
                    prev, state,
                    "{}: Theorem 2.2 violated — same lazy HBR, different states",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn theorem_2_2_counting_argument_mutex_state() {
    // Proof-sketch ingredient: two feasible schedules with the same lazy
    // HBR contain the same lock/unlock events, so they end with the same
    // mutex state. Verified directly on terminal snapshots.
    for bench in theorem_subjects() {
        let runs = all_runs(&bench.program, 20_000).unwrap();
        let mut mutexes_of: HashMap<u128, Vec<Option<lazylocks_model::ThreadId>>> = HashMap::new();
        for (trace, state) in &runs {
            let fp = HbBuilder::from_trace(HbMode::Lazy, &bench.program, trace).fingerprint();
            let owners = state.mutex_owner().to_vec();
            if let Some(prev) = mutexes_of.insert(fp, owners.clone()) {
                assert_eq!(
                    prev, owners,
                    "{}: mutex counting argument broken",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn lazy_linearizations_may_block_but_feasible_ones_agree() {
    // The §2 caveat: not all linearizations of a lazy HBR are feasible.
    // On the paper's own example some must block, and the feasible ones
    // reach exactly one state.
    let bench = lazylocks_suite::by_name("coarse-disjoint-t2-r1").unwrap();
    let runs = all_runs(&bench.program, 20_000).unwrap();
    let (trace, _) = &runs[0];
    let rel = HbBuilder::from_trace(HbMode::Lazy, &bench.program, trace);
    let lins = rel.linearizations(10_000);
    assert!(lins.complete());
    let mut feasible = 0;
    let mut infeasible = 0;
    let mut states = HashSet::new();
    for order in lins.orders() {
        match replay_events(&bench.program, order) {
            Ok(run) if run.trace == *order => {
                feasible += 1;
                states.insert(run.state);
            }
            _ => infeasible += 1,
        }
    }
    assert!(feasible >= 2, "both lock orders are feasible");
    assert!(
        infeasible > 0,
        "interleaving the critical sections must be infeasible"
    );
    assert_eq!(states.len(), 1, "Theorem 2.2 on the feasible subset");
}

#[test]
fn hbr_refinement_and_event_multisets() {
    // Same regular HBR ⇒ same lazy HBR, and same lazy HBR ⇒ identical
    // per-thread event sequences (in particular the same lock/unlock
    // multiset, the other counting-argument ingredient).
    for bench in theorem_subjects() {
        let runs = all_runs(&bench.program, 20_000).unwrap();
        let mut lazy_of_regular: HashMap<u128, u128> = HashMap::new();
        let mut locks_of_lazy: HashMap<u128, Vec<(VisibleKind, usize)>> = HashMap::new();
        for (trace, _) in &runs {
            let reg = HbBuilder::from_trace(HbMode::Regular, &bench.program, trace).fingerprint();
            let lazy = HbBuilder::from_trace(HbMode::Lazy, &bench.program, trace).fingerprint();
            if let Some(prev) = lazy_of_regular.insert(reg, lazy) {
                assert_eq!(prev, lazy, "{}: refinement broken", bench.name);
            }
            let mut locks: Vec<(VisibleKind, usize)> = trace
                .iter()
                .filter(|e| e.kind.is_mutex_op())
                .map(|e| (e.kind, e.thread().index()))
                .collect();
            locks.sort_by_key(|&(k, t)| (t, format!("{k}")));
            if let Some(prev) = locks_of_lazy.insert(lazy, locks.clone()) {
                assert_eq!(
                    prev, locks,
                    "{}: lock multiset differs in a lazy class",
                    bench.name
                );
            }
        }
    }
}
