//! Shared helpers for the cross-crate integration tests.

use lazylocks::{DfsEnumeration, ExploreConfig, ExploreStats, Explorer};
use lazylocks_model::{Program, ProgramBuilder, Reg, Value};
use lazylocks_runtime::{Event, ExecPhase, Executor, StateSnapshot};

/// Exhaustive ground truth for `program`: `None` if the schedule space
/// exceeds `limit` (the caller should then skip exact comparisons).
pub fn ground_truth(program: &Program, limit: usize) -> Option<ExploreStats> {
    let stats = DfsEnumeration.explore(program, &ExploreConfig::with_limit(limit));
    if stats.limit_hit || stats.truncated_runs > 0 {
        None
    } else {
        Some(stats)
    }
}

/// Every complete run of `program` as `(trace, terminal state)`, capped at
/// `cap` runs (returns `None` when the cap is hit).
pub fn all_runs(program: &Program, cap: usize) -> Option<Vec<(Vec<Event>, StateSnapshot)>> {
    let mut out = Vec::new();
    let complete = dfs_runs(&Executor::new(program), &mut Vec::new(), &mut out, cap);
    complete.then_some(out)
}

fn dfs_runs(
    exec: &Executor,
    trace: &mut Vec<Event>,
    out: &mut Vec<(Vec<Event>, StateSnapshot)>,
    cap: usize,
) -> bool {
    if out.len() >= cap {
        return false;
    }
    if !matches!(exec.phase(), ExecPhase::Running) {
        out.push((trace.clone(), exec.snapshot()));
        return true;
    }
    for t in exec.enabled_threads() {
        let mut child = exec.clone();
        let step = child.step(t);
        let pushed = step.event.is_some();
        if let Some(e) = step.event {
            trace.push(e);
        }
        let ok = dfs_runs(&child, trace, out, cap);
        if pushed {
            trace.pop();
        }
        if !ok {
            return false;
        }
    }
    true
}

/// A deterministic family of small random-ish programs for property tests.
/// `spec` bytes select threads, per-thread operation sequences, and
/// locking; every program is loop-free, hence finite.
pub fn program_from_spec(spec: &[u8]) -> Program {
    let mut b = ProgramBuilder::new("generated");
    let n_vars = 2 + (spec.first().copied().unwrap_or(0) as usize % 2); // 2..=3
    let vars = b.var_array("v", n_vars, 0);
    let m0 = b.mutex("m0");
    let m1 = b.mutex("m1");
    let n_threads = 2 + (spec.get(1).copied().unwrap_or(0) as usize % 2); // 2..=3

    for tix in 0..n_threads {
        let vars = vars.clone();
        let slice: Vec<u8> = spec.iter().copied().skip(2 + tix * 4).take(4).collect();
        b.thread(format!("T{tix}"), move |t| {
            let r = Reg(0);
            let mut held0 = false;
            let mut held1 = false;
            for &op in &slice {
                let var = vars[op as usize % vars.len()];
                match op % 7 {
                    0 => t.load(r, var),
                    1 => t.store(var, (op as Value) % 5),
                    2 => {
                        t.load(r, var);
                        t.add(r, r, 1);
                        t.store(var, r);
                    }
                    3 => {
                        if !held0 {
                            t.lock(m0);
                            held0 = true;
                        }
                    }
                    4 => {
                        if held0 {
                            t.unlock(m0);
                            held0 = false;
                        }
                    }
                    5 => {
                        if !held1 && !held0 {
                            // Only lock m1 when not holding m0: keeps the
                            // generated corpus deadlock-free so state
                            // comparisons stay meaningful.
                            t.lock(m1);
                            held1 = true;
                        }
                    }
                    _ => {
                        if held1 {
                            t.unlock(m1);
                            held1 = false;
                        }
                    }
                }
            }
            if held0 {
                t.unlock(m0);
            }
            if held1 {
                t.unlock(m1);
            }
            t.set(r, 0);
        });
    }
    b.build()
}

/// The exhaustible subset of the benchmark corpus: programs whose full
/// schedule space fits under `limit` complete schedules. Used to keep
/// exact-agreement tests fast and deterministic.
pub fn exhaustible_benchmarks(limit: usize) -> Vec<(lazylocks_suite::Benchmark, ExploreStats)> {
    lazylocks_suite::all()
        .into_iter()
        .filter_map(|b| ground_truth(&b.program, limit).map(|g| (b, g)))
        .collect()
}
