//! Shared helpers for the cross-crate integration tests.

use lazylocks::{DfsEnumeration, ExploreConfig, ExploreStats, Explorer};
use lazylocks_model::Program;
use lazylocks_runtime::{Event, ExecPhase, Executor, StateSnapshot};

/// Exhaustive ground truth for `program`: `None` if the schedule space
/// exceeds `limit` (the caller should then skip exact comparisons).
pub fn ground_truth(program: &Program, limit: usize) -> Option<ExploreStats> {
    let stats = DfsEnumeration.explore(program, &ExploreConfig::with_limit(limit));
    if stats.limit_hit || stats.truncated_runs > 0 {
        None
    } else {
        Some(stats)
    }
}

/// Every complete run of `program` as `(trace, terminal state)`, capped at
/// `cap` runs (returns `None` when the cap is hit).
pub fn all_runs(program: &Program, cap: usize) -> Option<Vec<(Vec<Event>, StateSnapshot)>> {
    let mut out = Vec::new();
    let complete = dfs_runs(&Executor::new(program), &mut Vec::new(), &mut out, cap);
    complete.then_some(out)
}

fn dfs_runs(
    exec: &Executor,
    trace: &mut Vec<Event>,
    out: &mut Vec<(Vec<Event>, StateSnapshot)>,
    cap: usize,
) -> bool {
    if out.len() >= cap {
        return false;
    }
    if !matches!(exec.phase(), ExecPhase::Running) {
        out.push((trace.clone(), exec.snapshot()));
        return true;
    }
    for t in exec.enabled_threads() {
        let mut child = exec.clone();
        let step = child.step(t);
        let pushed = step.event.is_some();
        if let Some(e) = step.event {
            trace.push(e);
        }
        let ok = dfs_runs(&child, trace, out, cap);
        if pushed {
            trace.pop();
        }
        if !ok {
            return false;
        }
    }
    true
}

/// The deterministic generated-program corpus for property tests: `cases`
/// programs drawn through `lazylocks_fuzz::corpus` — the *same* derivation
/// the fuzz harness uses (all shape profiles round-robin, size dial
/// cycling, per-case seeds drawn up front). Equal `(cases, seed)` always
/// yield the same corpus — a failure always reproduces.
pub fn generated_corpus(cases: usize, seed: u64) -> Vec<Program> {
    lazylocks_fuzz::corpus(&[], lazylocks_fuzz::MAX_SIZE, cases, seed)
        .into_iter()
        .map(|case| case.program)
        .collect()
}

/// The exhaustible subset of the benchmark corpus: programs whose full
/// schedule space fits under `limit` complete schedules. Used to keep
/// exact-agreement tests fast and deterministic.
pub fn exhaustible_benchmarks(limit: usize) -> Vec<(lazylocks_suite::Benchmark, ExploreStats)> {
    lazylocks_suite::all()
        .into_iter()
        .filter_map(|b| ground_truth(&b.program, limit).map(|g| (b, g)))
        .collect()
}
