//! Fault-injection harness: torn writes, failed fsyncs and truncated
//! journals must never panic, never lose a completed record, and never
//! leave a store or checkpoint directory in an unreadable state.
//!
//! The writers under test share one [`FaultPlan`] mechanism
//! (`lazylocks_trace::fault`), so each scenario here drives the real
//! persistence path — corpus store, checkpoint writer, job journal —
//! with a scheduled fault and asserts the recovery contract.

use lazylocks::{ExploreConfig, ExploreSession};
use lazylocks_server::journal::{done_record, start_record, submit_record};
use lazylocks_server::{replay_bytes, JobRequest, JobState, Journal};
use lazylocks_trace::{
    load_checkpoint, read_with, write_atomic_durable, CheckpointWriter, CorpusStore, FaultPlan,
    Json, TraceArtifact, CHECKPOINT_FILE,
};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lazylocks-fault-injection-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(tag: u64) -> JobRequest {
    JobRequest {
        program_source: format!("program p{tag}\nvar x = 0\nthread T {{\n store x = 1\n}}\n"),
        spec: "dpor(sleep=true)".to_string(),
        limit: 1000,
        seed: tag,
        preemptions: None,
        stop_on_bug: false,
        deadline_ms: None,
        minimize: false,
        priority: 0,
        progress_interval: 1000,
    }
}

/// A journal holding two completed jobs and one in-flight job, truncated
/// at *every* byte offset: replay never panics, and the recovered set is
/// exactly determined by which records' newlines made it to disk — a job
/// recovers iff its `submit` is durable and its terminal record is not.
#[test]
fn journal_truncated_at_every_offset_never_loses_a_completed_record() {
    let dir = temp_dir("journal-truncate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let journal = Journal::open(&path).unwrap();
    let len = |p| std::fs::metadata(p).map(|m| m.len() as usize).unwrap();
    let mut submit_end = [0usize; 3];
    let mut done_end = [usize::MAX; 3];
    for id in [1u64, 2] {
        let i = (id - 1) as usize;
        journal
            .append(&submit_record(id, &request(id), "done-job"))
            .unwrap();
        submit_end[i] = len(&path);
        journal.append(&start_record(id)).unwrap();
        journal.append(&done_record(id, JobState::Done)).unwrap();
        done_end[i] = len(&path);
    }
    journal
        .append(&submit_record(3, &request(3), "inflight-job"))
        .unwrap();
    submit_end[2] = len(&path);
    journal.append(&start_record(3)).unwrap();
    let full = std::fs::read(&path).unwrap();

    for cut in 0..=full.len() {
        let replay = replay_bytes(&full[..cut]);
        let recovered: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
        let expected: Vec<u64> = (0..3)
            .filter(|&i| submit_end[i] <= cut && cut < done_end[i])
            .map(|i| i as u64 + 1)
            .collect();
        assert_eq!(recovered, expected, "cut {cut}");
        for job in &replay.jobs {
            assert_eq!(job.request.seed, job.id, "cut {cut}: request intact");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_journal_appends_are_invisible_to_replay() {
    let dir = temp_dir("journal-torn");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let faults = FaultPlan::armed();
    let journal = Journal::open(&path).unwrap().with_faults(faults.clone());
    journal
        .append(&submit_record(1, &request(1), "first"))
        .unwrap();

    // The next append tears halfway through the payload.
    faults.truncate_next_write(10);
    journal
        .append(&submit_record(2, &request(2), "second"))
        .unwrap_err();
    assert!(faults.injected() > 0, "the torn write fired");

    // A crashed-then-restarted daemon sees job 1 whole and a warning —
    // not a panic, not a half-decoded job 2.
    let replay = replay_bytes(&std::fs::read(&path).unwrap());
    assert_eq!(replay.jobs.len(), 1);
    assert_eq!(replay.jobs[0].id, 1);
    assert!(!replay.skipped.is_empty(), "the torn tail is reported");

    // The journal stays appendable after the fault: job 3 lands on a new
    // line and replays alongside job 1.
    journal
        .append(&submit_record(3, &request(3), "third"))
        .unwrap();
    let replay = replay_bytes(&std::fs::read(&path).unwrap());
    let ids: Vec<u64> = replay.jobs.iter().map(|j| j.id).collect();
    assert_eq!(ids, [1, 3]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_store_writes_leave_the_corpus_consistent() {
    let bench = lazylocks_suite::by_name("philosophers-naive-2").expect("bench exists");
    let bug = ExploreSession::new(&bench.program)
        .with_config(ExploreConfig::with_limit(10_000).stopping_on_bug())
        .run_spec("dpor")
        .unwrap()
        .bugs
        .first()
        .cloned()
        .expect("the naive philosophers deadlock");
    let artifact = TraceArtifact::from_bug(&bench.program, "dpor", 1, &bug);
    let dir = temp_dir("store");
    let faults = FaultPlan::armed();
    let store = CorpusStore::open(&dir).unwrap().with_faults(faults.clone());

    store.save(&artifact).unwrap();
    let baseline = store.list().unwrap().len();

    // A torn overwrite must leave the existing (valid) artifact intact:
    // the tear hits the temp file, the rename never happens.
    faults.truncate_next_write(25);
    store.save_overwrite(&artifact).unwrap_err();
    let entries = store.list().unwrap();
    assert_eq!(entries.len(), baseline);
    for entry in &entries {
        entry.artifact.as_ref().expect("artifact decodes");
    }

    // An fsync failure is surfaced, not swallowed — durability errors
    // must not be reported as success.
    faults.fail_fsyncs(1);
    store.save_overwrite(&artifact).unwrap_err();
    assert!(faults.injected() >= 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_checkpoint_writes_keep_the_previous_generation_loadable() {
    let bench = lazylocks_suite::by_name("paper-figure1").expect("bench exists");
    let program = &bench.program;
    let dir = temp_dir("checkpoint");
    let faults = FaultPlan::armed();
    let writer = CheckpointWriter::new(&dir, program, "dpor(sleep=true)", 1)
        .unwrap()
        .with_faults(faults.clone());

    // Tear every single checkpoint write of a full exploration. The
    // writer warns and keeps exploring; no generation ever corrupts the
    // previous one, so the directory simply never gains a checkpoint.
    faults.truncate_next_write(30);
    let outcome = ExploreSession::new(program)
        .with_config(
            ExploreConfig::with_limit(1_000_000)
                .seeded(1)
                .checkpointing_every(1),
        )
        .observe_arc(Arc::new(writer))
        .run_spec("dpor(sleep=true)")
        .unwrap();
    assert!(outcome.stats.schedules > 0);
    assert!(faults.injected() > 0);

    // Only the first write tore (one-shot plan); the survivors left a
    // valid newest-generation document behind.
    let doc = load_checkpoint(&dir).unwrap().expect("later writes landed");
    doc.check_matches(program, "dpor(sleep=true)", 1).unwrap();
    assert!(dir.join(CHECKPOINT_FILE).is_file());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_reads_are_detected_not_misparsed() {
    let dir = temp_dir("short-read");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.json");
    let payload = Json::obj([("ok", Json::Bool(true))]).encode();
    write_atomic_durable(&path, payload.as_bytes(), &FaultPlan::inert()).unwrap();

    let faults = FaultPlan::armed();
    faults.truncate_next_read(3);
    let short = read_with(&path, &faults).unwrap();
    // The reader sees a prefix; parsing it fails loudly instead of
    // yielding a half-document.
    assert_eq!(short.len(), 3);
    assert!(Json::parse(std::str::from_utf8(&short).unwrap()).is_err());

    // With the plan drained the same path reads back whole.
    let whole = read_with(&path, &faults).unwrap();
    assert_eq!(whole, payload.as_bytes());
    std::fs::remove_dir_all(&dir).ok();
}
