//! Golden differential-equivalence suite for the exploration hot loop.
//!
//! Performance work on the exploration engines (bitmask thread sets,
//! inline clocks, indexed race detection) must never change *what* is
//! explored — only how fast. This test pins the observable exploration
//! results — schedules explored, events executed, distinct terminal
//! states / HBR classes, deadlocks and faulted schedules — for every
//! suite family under every reduction strategy, byte-for-byte, against a
//! snapshot generated before the optimisation landed.
//!
//! Regenerate the snapshot (only when *intentionally* changing
//! exploration semantics) with:
//!
//! ```text
//! LAZYLOCKS_BLESS=1 cargo test -p lazylocks-integration --test golden_stats
//! ```
//!
//! With `LAZYLOCKS_METRICS=1` every cell additionally runs with a live
//! metrics registry; with `LAZYLOCKS_PROFILE=1`, with a live exploration
//! profiler. Either way the snapshot must still match byte-for-byte (CI
//! runs the suite once each way — instrumentation must never perturb
//! what is explored).

use lazylocks::{ExploreConfig, ExploreSession, MetricsHandle, ProfileHandle};
use std::fmt::Write as _;

/// Schedule budget per (benchmark, strategy) cell. Small enough to keep
/// the suite fast in debug builds, large enough that several cells hit
/// the limit and several finish exhaustively — both paths are pinned.
const LIMIT: usize = 400;

/// Strategies whose exploration results are pinned. Exactly the
/// reduction strategies whose hot loops the optimisation touches.
const STRATEGIES: &[&str] = &[
    "dpor",
    "dpor(sleep=true)",
    "lazy-dpor",
    "lazy-dpor(style=vars)",
    "dfs",
    "caching",
];

/// Benchmarks per family included in the snapshot (the first two of each
/// family, by id — every family is represented).
const PER_FAMILY: usize = 2;

fn selected_benchmarks() -> Vec<lazylocks_suite::Benchmark> {
    let mut taken: std::collections::BTreeMap<&'static str, usize> = Default::default();
    lazylocks_suite::all()
        .into_iter()
        .filter(|b| {
            let n = taken.entry(b.family).or_insert(0);
            *n += 1;
            *n <= PER_FAMILY
        })
        .collect()
}

fn render() -> String {
    let mut out = String::new();
    out.push_str(
        "# bench\tstrategy\tschedules\tevents\tstates\thbrs\tlazy_hbrs\
         \tdeadlocks\tfaulted\tmax_depth\tlimit_hit\n",
    );
    let instrument = std::env::var_os("LAZYLOCKS_METRICS").is_some();
    let profiled = std::env::var_os("LAZYLOCKS_PROFILE").is_some();
    for bench in selected_benchmarks() {
        for spec in STRATEGIES {
            let metrics = if instrument {
                MetricsHandle::enabled()
            } else {
                MetricsHandle::disabled()
            };
            let profile = if profiled {
                ProfileHandle::enabled()
            } else {
                ProfileHandle::disabled()
            };
            let outcome = ExploreSession::new(&bench.program)
                .with_config(
                    ExploreConfig::with_limit(LIMIT)
                        .with_metrics(metrics)
                        .with_profile(profile),
                )
                .run_spec(spec)
                .unwrap_or_else(|e| panic!("{}/{spec}: {e}", bench.name));
            let s = outcome.stats;
            s.check_inequality()
                .unwrap_or_else(|e| panic!("{}/{spec}: {e}", bench.name));
            writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                bench.name,
                spec,
                s.schedules,
                s.events,
                s.unique_states,
                s.unique_hbrs,
                s.unique_lazy_hbrs,
                s.deadlocks,
                s.faulted_schedules,
                s.max_depth,
                s.limit_hit,
            )
            .unwrap();
        }
    }
    out
}

#[test]
fn exploration_results_match_golden_snapshot() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/exploration_stats.tsv");
    let actual = render();
    if std::env::var_os("LAZYLOCKS_BLESS").is_some() {
        std::fs::write(golden_path, &actual).expect("write golden snapshot");
        eprintln!("blessed {golden_path}");
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("golden snapshot missing — run once with LAZYLOCKS_BLESS=1");
    if actual != expected {
        // Show the first few diverging lines; a full dump would drown the
        // signal in a 280-line blob.
        let mut diffs = Vec::new();
        for (a, e) in actual.lines().zip(expected.lines()) {
            if a != e {
                diffs.push(format!("  expected: {e}\n  actual:   {a}"));
                if diffs.len() == 8 {
                    break;
                }
            }
        }
        if actual.lines().count() != expected.lines().count() {
            diffs.push(format!(
                "  line count: expected {}, actual {}",
                expected.lines().count(),
                actual.lines().count()
            ));
        }
        panic!(
            "exploration results diverged from the golden snapshot \
             ({} lines differ):\n{}",
            diffs.len(),
            diffs.join("\n")
        );
    }
}
