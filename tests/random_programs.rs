//! Property-based cross-checks on generated programs: the strategies must
//! agree with exhaustive enumeration on arbitrary small guest programs,
//! not just on the curated corpus.
//!
//! The corpus comes from the `lazylocks-fuzz` shape-profile generator
//! (fixed seed, fixed case count, all five profiles, size dial cycling),
//! so every run checks exactly the same programs — a failure always
//! reproduces. Cases whose schedule space exceeds the enumeration budget
//! are skipped, with a floor asserting the corpus stays mostly
//! exhaustible.

use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer, HbrCaching};
use lazylocks_hbr::{HbBuilder, HbMode};
use lazylocks_integration::{all_runs, generated_corpus};
use std::collections::{HashMap, HashSet};

const CASES: usize = 200;
const SEED: u64 = 0x5eed_1e55;

#[test]
fn dpor_and_caching_agree_with_dfs() {
    let mut compared = 0;
    for program in generated_corpus(CASES, SEED) {
        let name = program.name().to_string();
        let config = ExploreConfig::with_limit(20_000);
        let dfs = DfsEnumeration.explore(&program, &config);
        if dfs.limit_hit {
            continue; // too big to serve as ground truth
        }
        compared += 1;

        // Default DPOR: exact agreement on states and classes.
        let dpor = Dpor::default().explore(&program, &config);
        assert!(!dpor.limit_hit, "{name}");
        assert_eq!(
            dpor.unique_states, dfs.unique_states,
            "default DPOR missed states on {name}"
        );
        assert_eq!(
            dpor.unique_hbrs, dfs.unique_hbrs,
            "default DPOR missed HBR classes on {name}"
        );
        assert!(dpor.schedules <= dfs.schedules, "{name}");
        // Sleep-set mode: bug parity (its documented contract).
        let sleepy = Dpor {
            sleep_sets: true,
            ..Dpor::default()
        }
        .explore(&program, &config);
        assert_eq!(
            sleepy.deadlocks > 0,
            dfs.deadlocks > 0,
            "sleep-set DPOR lost deadlock parity on {name}"
        );
        assert_eq!(
            sleepy.faulted_schedules > 0,
            dfs.faulted_schedules > 0,
            "sleep-set DPOR lost fault parity on {name}"
        );
        assert!(
            sleepy.schedules <= dpor.schedules,
            "{name}: sleep sets must prune, not add"
        );
        for caching in [HbrCaching::regular(), HbrCaching::lazy()] {
            let stats = caching.explore(&program, &config);
            assert!(!stats.limit_hit, "{name}");
            assert_eq!(
                stats.unique_states,
                dfs.unique_states,
                "{} missed states on {name}",
                caching.name(),
            );
            assert!(stats.schedules <= dfs.schedules, "{name}");
        }
    }
    assert!(
        compared >= CASES / 2,
        "the generated corpus must stay mostly exhaustible; compared only {compared}/{CASES}"
    );
}

#[test]
fn theorems_hold_on_random_programs() {
    let mut compared = 0;
    for program in generated_corpus(CASES, SEED) {
        let Some(runs) = all_runs(&program, 8_000) else {
            // Too many schedules; skip this instance.
            continue;
        };
        compared += 1;
        // Theorem 2.1 + 2.2 as class→state functions.
        for mode in [HbMode::Regular, HbMode::Lazy] {
            let mut state_of: HashMap<u128, &lazylocks_runtime::StateSnapshot> = HashMap::new();
            for (trace, state) in &runs {
                let fp = HbBuilder::from_trace(mode, &program, trace).fingerprint();
                if let Some(prev) = state_of.insert(fp, state) {
                    assert_eq!(
                        prev,
                        state,
                        "{mode:?}: same class, different states ({})",
                        program.name()
                    );
                }
            }
        }
        // Counting chain on the exhaustive space.
        let states: HashSet<_> = runs.iter().map(|(_, s)| s.clone()).collect();
        let lazy: HashSet<_> = runs
            .iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Lazy, &program, t).fingerprint())
            .collect();
        let regular: HashSet<_> = runs
            .iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Regular, &program, t).fingerprint())
            .collect();
        assert!(states.len() <= lazy.len());
        assert!(lazy.len() <= regular.len());
        assert!(regular.len() <= runs.len());
    }
    assert!(compared >= CASES / 2, "compared only {compared}/{CASES}");
}

#[test]
fn generated_programs_round_trip_the_text_format() {
    for program in generated_corpus(CASES, SEED) {
        let source = program.to_source();
        let reparsed = lazylocks_model::Program::parse(&source).expect("pretty output must parse");
        assert_eq!(program, reparsed);
        // Canonical bytes — and with them program fingerprints — survive
        // the trip byte-for-byte.
        assert_eq!(source, reparsed.to_source());
    }
}

#[test]
fn replay_reproduces_every_terminal_state() {
    for program in generated_corpus(CASES, SEED) {
        let Some(runs) = all_runs(&program, 2_000) else {
            continue;
        };
        for (trace, state) in runs.iter().take(50) {
            let schedule: Vec<_> = trace.iter().map(|e| e.thread()).collect();
            let replay = lazylocks_runtime::run_schedule(&program, &schedule)
                .expect("recorded schedules replay");
            assert_eq!(&replay.state, state);
        }
    }
}

#[test]
fn corpus_is_deterministic_and_profile_diverse() {
    let a = generated_corpus(CASES, SEED);
    let b = generated_corpus(CASES, SEED);
    assert_eq!(a, b, "equal (cases, seed) must yield the equal corpus");
    for profile in lazylocks_fuzz::ShapeProfile::ALL {
        let count = a
            .iter()
            .filter(|p| p.name().contains(profile.name()))
            .count();
        assert_eq!(count, CASES / 5, "{profile} is evenly represented");
    }
    // Deadlocks and faults both occur somewhere in the corpus — the
    // cross-checks above exercise real bug classes, not only clean runs.
    let mut deadlocks = 0;
    let mut faults = 0;
    for program in &a {
        let stats = DfsEnumeration.explore(program, &ExploreConfig::with_limit(20_000));
        if stats.limit_hit {
            continue;
        }
        deadlocks += stats.deadlocks.min(1);
        faults += stats.faulted_schedules.min(1);
    }
    assert!(deadlocks >= 5, "corpus has deadlocking cases: {deadlocks}");
    assert!(faults >= 5, "corpus has faulting cases: {faults}");
}
