//! Property-based cross-checks on randomly generated programs: the
//! strategies must agree with exhaustive enumeration on arbitrary small
//! loop-free guest programs, not just on the curated corpus.
//!
//! Specs are drawn from the workspace's deterministic [`SplitMix64`]
//! generator (fixed seed, fixed case count), so every run checks exactly
//! the same corpus of generated programs — a failure always reproduces.

use lazylocks::rng::SplitMix64;
use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer, HbrCaching};
use lazylocks_hbr::{HbBuilder, HbMode};
use lazylocks_integration::{all_runs, program_from_spec};
use std::collections::{HashMap, HashSet};

const CASES: usize = 48;

/// The deterministic spec corpus: `CASES` byte vectors of length 8..16.
fn spec_corpus() -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(0x5eed_1e55_u64);
    (0..CASES)
        .map(|_| {
            let len = 8 + rng.gen_range(8);
            let mut spec = vec![0u8; len];
            rng.fill_bytes(&mut spec);
            spec
        })
        .collect()
}

#[test]
fn dpor_and_caching_agree_with_dfs() {
    for spec in spec_corpus() {
        let program = program_from_spec(&spec);
        let config = ExploreConfig::with_limit(30_000);
        let dfs = DfsEnumeration.explore(&program, &config);
        if dfs.limit_hit {
            continue; // too big to serve as ground truth
        }

        // Default DPOR: exact agreement on states and classes.
        let dpor = Dpor::default().explore(&program, &config);
        assert!(!dpor.limit_hit);
        assert_eq!(
            dpor.unique_states, dfs.unique_states,
            "default DPOR missed states on {spec:?}"
        );
        assert_eq!(
            dpor.unique_hbrs, dfs.unique_hbrs,
            "default DPOR missed HBR classes on {spec:?}"
        );
        assert!(dpor.schedules <= dfs.schedules);
        // Sleep-set mode: bug parity (its documented contract).
        let sleepy = Dpor {
            sleep_sets: true,
            ..Dpor::default()
        }
        .explore(&program, &config);
        assert_eq!(
            sleepy.deadlocks > 0,
            dfs.deadlocks > 0,
            "sleep-set DPOR lost deadlock parity on {spec:?}"
        );
        assert_eq!(
            sleepy.faulted_schedules > 0,
            dfs.faulted_schedules > 0,
            "sleep-set DPOR lost fault parity on {spec:?}"
        );
        assert!(
            sleepy.schedules <= dpor.schedules,
            "sleep sets must prune, not add"
        );
        for caching in [HbrCaching::regular(), HbrCaching::lazy()] {
            let stats = caching.explore(&program, &config);
            assert!(!stats.limit_hit);
            assert_eq!(
                stats.unique_states,
                dfs.unique_states,
                "{} missed states on {:?}",
                caching.name(),
                spec
            );
            assert!(stats.schedules <= dfs.schedules);
        }
    }
}

#[test]
fn theorems_hold_on_random_programs() {
    for spec in spec_corpus() {
        let program = program_from_spec(&spec);
        let Some(runs) = all_runs(&program, 8_000) else {
            // Too many schedules; skip this instance.
            continue;
        };
        // Theorem 2.1 + 2.2 as class→state functions.
        for mode in [HbMode::Regular, HbMode::Lazy] {
            let mut state_of: HashMap<u128, &lazylocks_runtime::StateSnapshot> = HashMap::new();
            for (trace, state) in &runs {
                let fp = HbBuilder::from_trace(mode, &program, trace).fingerprint();
                if let Some(prev) = state_of.insert(fp, state) {
                    assert_eq!(
                        prev, state,
                        "{mode:?}: same class, different states (spec {spec:?})"
                    );
                }
            }
        }
        // Counting chain on the exhaustive space.
        let states: HashSet<_> = runs.iter().map(|(_, s)| s.clone()).collect();
        let lazy: HashSet<_> = runs
            .iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Lazy, &program, t).fingerprint())
            .collect();
        let regular: HashSet<_> = runs
            .iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Regular, &program, t).fingerprint())
            .collect();
        assert!(states.len() <= lazy.len());
        assert!(lazy.len() <= regular.len());
        assert!(regular.len() <= runs.len());
    }
}

#[test]
fn generated_programs_round_trip_the_text_format() {
    for spec in spec_corpus() {
        let program = program_from_spec(&spec);
        let source = program.to_source();
        let reparsed = lazylocks_model::Program::parse(&source).expect("pretty output must parse");
        assert_eq!(program, reparsed);
    }
}

#[test]
fn replay_reproduces_every_terminal_state() {
    for spec in spec_corpus() {
        let program = program_from_spec(&spec);
        let Some(runs) = all_runs(&program, 2_000) else {
            continue;
        };
        for (trace, state) in runs.iter().take(50) {
            let schedule: Vec<_> = trace.iter().map(|e| e.thread()).collect();
            let replay = lazylocks_runtime::run_schedule(&program, &schedule)
                .expect("recorded schedules replay");
            assert_eq!(&replay.state, state);
        }
    }
}
