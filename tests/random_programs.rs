//! Property-based cross-checks on randomly generated programs: the
//! strategies must agree with exhaustive enumeration on arbitrary small
//! loop-free guest programs, not just on the curated corpus.

use lazylocks::{DfsEnumeration, Dpor, ExploreConfig, Explorer, HbrCaching};
use lazylocks_hbr::{HbBuilder, HbMode};
use lazylocks_integration::{all_runs, program_from_spec};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn spec_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 8..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dpor_and_caching_agree_with_dfs(spec in spec_strategy()) {
        let program = program_from_spec(&spec);
        let config = ExploreConfig::with_limit(30_000);
        let dfs = DfsEnumeration.explore(&program, &config);
        prop_assume!(!dfs.limit_hit);

        // Default DPOR: exact agreement on states and classes.
        let dpor = Dpor::default().explore(&program, &config);
        prop_assert!(!dpor.limit_hit);
        prop_assert_eq!(dpor.unique_states, dfs.unique_states,
            "default DPOR missed states on {:?}", spec);
        prop_assert_eq!(dpor.unique_hbrs, dfs.unique_hbrs,
            "default DPOR missed HBR classes on {:?}", spec);
        prop_assert!(dpor.schedules <= dfs.schedules);
        // Sleep-set mode: bug parity (its documented contract).
        let sleepy = Dpor { sleep_sets: true, ..Dpor::default() }.explore(&program, &config);
        prop_assert_eq!(sleepy.deadlocks > 0, dfs.deadlocks > 0,
            "sleep-set DPOR lost deadlock parity on {:?}", spec);
        prop_assert_eq!(sleepy.faulted_schedules > 0, dfs.faulted_schedules > 0,
            "sleep-set DPOR lost fault parity on {:?}", spec);
        prop_assert!(sleepy.schedules <= dpor.schedules,
            "sleep sets must prune, not add");
        for caching in [HbrCaching::regular(), HbrCaching::lazy()] {
            let stats = caching.explore(&program, &config);
            prop_assert!(!stats.limit_hit);
            prop_assert_eq!(stats.unique_states, dfs.unique_states,
                "{} missed states on {:?}", caching.name(), spec);
            prop_assert!(stats.schedules <= dfs.schedules);
        }
    }

    #[test]
    fn theorems_hold_on_random_programs(spec in spec_strategy()) {
        let program = program_from_spec(&spec);
        let Some(runs) = all_runs(&program, 8_000) else {
            // Too many schedules; skip this instance.
            return Ok(());
        };
        // Theorem 2.1 + 2.2 as class→state functions.
        for mode in [HbMode::Regular, HbMode::Lazy] {
            let mut state_of: HashMap<u128, &lazylocks_runtime::StateSnapshot> = HashMap::new();
            for (trace, state) in &runs {
                let fp = HbBuilder::from_trace(mode, &program, trace).fingerprint();
                if let Some(prev) = state_of.insert(fp, state) {
                    prop_assert_eq!(prev, state,
                        "{:?}: same {:?} class, different states (spec {:?})",
                        mode, mode, spec);
                }
            }
        }
        // Counting chain on the exhaustive space.
        let states: HashSet<_> = runs.iter().map(|(_, s)| s.clone()).collect();
        let lazy: HashSet<_> = runs.iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Lazy, &program, t).fingerprint())
            .collect();
        let regular: HashSet<_> = runs.iter()
            .map(|(t, _)| HbBuilder::from_trace(HbMode::Regular, &program, t).fingerprint())
            .collect();
        prop_assert!(states.len() <= lazy.len());
        prop_assert!(lazy.len() <= regular.len());
        prop_assert!(regular.len() <= runs.len());
    }

    #[test]
    fn generated_programs_round_trip_the_text_format(spec in spec_strategy()) {
        let program = program_from_spec(&spec);
        let source = program.to_source();
        let reparsed = lazylocks_model::Program::parse(&source)
            .expect("pretty output must parse");
        prop_assert_eq!(program, reparsed);
    }

    #[test]
    fn replay_reproduces_every_terminal_state(spec in spec_strategy()) {
        let program = program_from_spec(&spec);
        let Some(runs) = all_runs(&program, 2_000) else { return Ok(()); };
        for (trace, state) in runs.iter().take(50) {
            let schedule: Vec<_> = trace.iter().map(|e| e.thread()).collect();
            let replay = lazylocks_runtime::run_schedule(&program, &schedule)
                .expect("recorded schedules replay");
            prop_assert_eq!(&replay.state, state);
        }
    }
}
