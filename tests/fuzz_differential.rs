//! End-to-end checks of the fuzzing subsystem across crates: the shipped
//! oracle agrees over a generated corpus, and an intentionally broken
//! strategy (test-only fault injection) is caught, shrunk to a
//! near-minimal `.llk` repro, persisted as a trace artifact, and
//! reproduced by the replay machinery.

use lazylocks::{
    CancelToken, DfsEnumeration, ExploreConfig, ExploreStats, Explorer, StrategyRegistry,
};
use lazylocks_fuzz::{
    default_oracle_specs, run_fuzz, Agreement, CaseStatus, FuzzConfig, OracleSpec, ShapeProfile,
};
use lazylocks_model::Program;
use lazylocks_trace::{replay_embedded, CorpusStore, TraceArtifact};

fn temp_store(tag: &str) -> CorpusStore {
    let dir = std::env::temp_dir().join(format!("lazylocks-fuzz-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CorpusStore::open(dir).unwrap()
}

#[test]
fn shipped_oracle_agrees_across_every_profile() {
    let config = FuzzConfig {
        profiles: ShapeProfile::ALL.to_vec(),
        cases: 40,
        seed: 0xd1ff,
        budget: 15_000,
        max_size: 3,
        shrink: true,
    };
    let report = run_fuzz(
        &config,
        &StrategyRegistry::default(),
        &default_oracle_specs(),
        None,
        &CancelToken::new(),
        |_| {},
    )
    .unwrap();
    assert_eq!(report.cases.len(), 40);
    assert_eq!(
        report.total_disagreements(),
        0,
        "shipped strategies must honour their contracts: {:#?}",
        report
            .cases
            .iter()
            .filter(|c| c.status == CaseStatus::Disagreed)
            .collect::<Vec<_>>()
    );
    // The corpus must be meaningful: mostly exhaustible, with bug-bearing
    // cases in the mix (deadlock-prone and data-race-rich profiles).
    let compared = report.cases.len() - report.count(CaseStatus::Unexhausted);
    assert!(compared >= 30, "corpus mostly exhaustible, got {compared}");
    assert!(
        report.count(CaseStatus::AgreedBuggy) >= 3,
        "the corpus exercises bug classes"
    );
}

/// DFS that silently drops every subtree after the first few schedules —
/// the injected fault the oracle must catch.
struct LossyDfs {
    keep: usize,
}

impl Explorer for LossyDfs {
    fn name(&self) -> String {
        "lossy-dfs".to_string()
    }
    fn explore(&self, program: &Program, config: &ExploreConfig) -> ExploreStats {
        let mut config = config.clone();
        config.schedule_limit = self.keep;
        let mut stats = DfsEnumeration.explore(program, &config);
        stats.limit_hit = false; // lie: pretend the tree was covered
        stats
    }
}

#[test]
fn injected_fault_is_caught_shrunk_persisted_and_replayed() {
    let mut registry = StrategyRegistry::default();
    registry.register("lossy-dfs", "test-only fault injection", |p| {
        let keep = p.take_usize("keep", 1)?;
        Ok(Box::new(LossyDfs { keep }))
    });
    // The broken strategy claims full parity; data-race-rich programs with
    // more than one terminal state expose it immediately.
    let oracle = vec![OracleSpec::new("lossy-dfs", Agreement::FullParity)];
    let store = temp_store("lossy");
    let config = FuzzConfig {
        profiles: vec![ShapeProfile::DataRaceRich],
        cases: 6,
        seed: 21,
        budget: 15_000,
        max_size: 2,
        shrink: true,
    };
    let report = run_fuzz(
        &config,
        &registry,
        &oracle,
        Some(&store),
        &CancelToken::new(),
        |_| {},
    )
    .unwrap();
    let disagreed: Vec<_> = report
        .cases
        .iter()
        .filter(|c| c.status == CaseStatus::Disagreed)
        .collect();
    assert!(
        !disagreed.is_empty(),
        "the lossy strategy must be caught: {:#?}",
        report.cases
    );

    let mut replayed = 0;
    for case in &disagreed {
        assert!(
            case.disagreements
                .iter()
                .all(|d| d.spec == "lossy-dfs" && d.strategy_id == "lossy-dfs"),
            "every disagreement names the injected strategy"
        );
        for repro in &case.repros {
            // Acceptance bar: shrunk repros are near-minimal.
            assert!(
                repro.instructions <= 25,
                "shrunk repro must be <= 25 instructions, got {} for\n{}",
                repro.instructions,
                repro.artifact.program_source
            );
            let path = repro.path.as_ref().expect("repros persist into the store");
            assert!(path.exists());

            // A fresh decode of the on-disk artifact replays: the embedded
            // shrunk program + schedule reproduce the recorded outcome.
            let artifact = TraceArtifact::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
            let replay = replay_embedded(&artifact).unwrap();
            assert!(replay.reproduced(), "{path:?} must reproduce, got {replay}");

            // The embedded program still distinguishes lossy from real
            // DFS on at least one compared counter (which one depends on
            // the disagreement class the shrinker preserved — a minimal
            // read-write race separates on HBR classes, not states).
            let shrunk = Program::parse(&artifact.program_source).unwrap();
            let truth = DfsEnumeration.explore(&shrunk, &ExploreConfig::with_limit(15_000));
            let lossy = LossyDfs { keep: 1 }.explore(&shrunk, &ExploreConfig::with_limit(15_000));
            assert!(
                truth.unique_states > lossy.unique_states
                    || truth.unique_hbrs > lossy.unique_hbrs
                    || truth.unique_lazy_hbrs > lossy.unique_lazy_hbrs
                    || truth.deadlocks.min(1) > lossy.deadlocks.min(1)
                    || truth.faulted_schedules.min(1) > lossy.faulted_schedules.min(1),
                "shrunk program still separates the strategies:\n{}",
                artifact.program_source
            );
            replayed += 1;
        }
    }
    assert!(replayed >= 1, "at least one persisted repro was verified");
    std::fs::remove_dir_all(store.root()).ok();
}

#[test]
fn fuzz_harness_report_is_deterministic_for_equal_configs() {
    let config = FuzzConfig {
        profiles: vec![ShapeProfile::DeadlockProne, ShapeProfile::Branchy],
        cases: 12,
        seed: 5,
        budget: 10_000,
        max_size: 2,
        shrink: true,
    };
    let registry = StrategyRegistry::default();
    let oracle = default_oracle_specs();
    let run = || {
        run_fuzz(
            &config,
            &registry,
            &oracle,
            None,
            &CancelToken::new(),
            |_| {},
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    for (x, y) in a.cases.iter().zip(&b.cases) {
        assert_eq!(x.program_name, y.program_name);
        assert_eq!(x.fingerprint, y.fingerprint);
        assert_eq!(x.status, y.status);
        assert_eq!(x.dfs, y.dfs);
    }
}
