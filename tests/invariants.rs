//! The paper's §3 counting inequality, asserted across the entire corpus
//! and every strategy:
//!
//! ```text
//! #states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules ≤ limit
//! ```

use lazylocks::{ExploreConfig, ExploreSession, StrategyRegistry};

const LIMIT: usize = 1_500;

const SPECS: [&str; 7] = [
    "dfs",
    "dpor(sleep=true)",
    "dpor(sleep=false)",
    "caching",
    "caching(mode=lazy)",
    "lazy-dpor",
    "random",
];

#[test]
fn inequality_holds_for_every_benchmark_under_dpor() {
    for bench in lazylocks_suite::all() {
        let stats = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(LIMIT))
            .run_spec("dpor(sleep=true)")
            .unwrap()
            .stats;
        stats
            .check_inequality()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            stats.schedules <= LIMIT,
            "{}: schedule limit not respected",
            bench.name
        );
    }
}

#[test]
fn inequality_holds_for_every_strategy_on_representatives() {
    // One representative per family keeps the full cross-product fast.
    let representatives = [
        "paper-figure1",
        "coarse-disjoint-t3-r1",
        "coarse-shared-t2-r2",
        "fine-t3-e2",
        "accounts-coarse-shared2",
        "accounts-fine-deadlock2",
        "buffer-c1-p1x1",
        "philosophers-naive-3",
        "rw-r1-w1",
        "indexer-t2-s2",
        "fs-t2-i2-b2",
        "lastzero-t2-n2",
        "peterson",
        "barrier-2-s1",
        "pipeline-2-s2",
        "workqueue-w2-i2",
    ];
    let registry = StrategyRegistry::default();
    for name in representatives {
        let bench = lazylocks_suite::by_name(name).unwrap_or_else(|| panic!("missing {name}"));
        let session =
            ExploreSession::new(&bench.program).with_config(ExploreConfig::with_limit(LIMIT));
        for spec in SPECS {
            let stats = session.run_with(&registry, spec).unwrap().stats;
            stats
                .check_inequality()
                .unwrap_or_else(|e| panic!("{name} under {spec}: {e}"));
        }
    }
}

#[test]
fn lazy_class_count_never_exceeds_regular_anywhere() {
    for bench in lazylocks_suite::all() {
        let stats = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(LIMIT))
            .run_spec("dpor(sleep=true)")
            .unwrap()
            .stats;
        assert!(
            stats.unique_lazy_hbrs <= stats.unique_hbrs,
            "{}: {} lazy classes > {} regular classes",
            bench.name,
            stats.unique_lazy_hbrs,
            stats.unique_hbrs
        );
    }
}

#[test]
fn mutex_free_benchmarks_sit_exactly_on_the_diagonal() {
    for bench in lazylocks_suite::all() {
        if !bench.program.mutexes().is_empty() {
            continue;
        }
        let stats = ExploreSession::new(&bench.program)
            .with_config(ExploreConfig::with_limit(LIMIT))
            .run_spec("dfs")
            .unwrap()
            .stats;
        assert_eq!(
            stats.unique_hbrs, stats.unique_lazy_hbrs,
            "{}: mutex-free program must have identical relations",
            bench.name
        );
    }
}
