//! Hostile `.llk` input: programs no disciplined frontend would produce,
//! but which can now arrive over the network via `lazylocks-server`.
//!
//! The central regression here is the DPOR trace-index/frame-depth
//! mapping. A thread executing `unlock m` without holding `m` takes a
//! *no-event fault step*: the exploration pushes a stack frame with no
//! trace entry, after which trace indices and frame depths diverge.
//! Race handling used to treat trace indices as frame depths, landing
//! backtrack insertions one frame early — a no-op whenever the racing
//! thread was already in that frame's `done` set, silently dropping the
//! reversal. These tests pin full DFS parity on programs that start with
//! exactly such a fault.

use lazylocks::{DependenceMode, Dpor, ExploreConfig, Explorer, ParallelDpor};
use lazylocks_model::Program;

/// The minimal failing shape found by enumeration: a faulting thread
/// followed by two threads that each take the same lock twice. The four
/// critical sections admit six happens-before classes; the one-frame-early
/// insertions collapsed them to two (the racing thread was in `done` at
/// the mis-targeted frame, so the insertion was silently dropped).
const UNLOCK_FAULT_SHIFT: &str = "\
program unlock-fault-shift
var x = 0
mutex m
mutex l

thread F {
  unlock m
}

thread A {
  lock l
  store x = 1
  unlock l
  lock l
  store x = 1
  unlock l
}

thread B {
  lock l
  store x = 1
  unlock l
  r0 = load x
}
";

/// Same shape with the fault thread declared *between* the workers, so the
/// no-event frame appears mid-trace in backtracked subtrees too.
const FAULT_BETWEEN: &str = "\
program unlock-fault-between
var x = 0
mutex m
mutex l

thread A {
  lock l
  store x = 1
  unlock l
  lock l
  store x = 2
  unlock l
}

thread F {
  unlock m
}

thread B {
  lock l
  store x = 3
  unlock l
  lock l
  store x = 4
  unlock l
}
";

/// Two faulting threads: every later event's index is shifted two frames.
const DOUBLE_FAULT: &str = "\
program unlock-double-fault
var x = 0
mutex m
mutex l

thread F {
  unlock m
}

thread G {
  unlock m
}

thread A {
  lock l
  store x = 1
  unlock l
  lock l
  store x = 1
  unlock l
}

thread B {
  lock l
  store x = 1
  unlock l
  r0 = load x
}
";

fn assert_dfs_parity(source: &str) {
    let program = Program::parse(source).expect("hostile program still parses");
    let cfg = ExploreConfig::with_limit(1_000_000);
    let dfs = lazylocks::DfsEnumeration.explore(&program, &cfg);
    assert!(!dfs.limit_hit, "ground truth must be exhaustive");
    assert!(
        dfs.faulted_schedules > 0,
        "the program must actually exercise the no-event fault path"
    );

    let dpor = Dpor::default().explore(&program, &cfg);
    assert_eq!(
        dpor.unique_states,
        dfs.unique_states,
        "DPOR missed states on {}",
        program.name()
    );
    assert_eq!(
        dpor.unique_hbrs,
        dfs.unique_hbrs,
        "DPOR missed HBR classes on {}",
        program.name()
    );
    assert!(dpor.schedules <= dfs.schedules);

    for workers in [1, 2, 4] {
        let par = ParallelDpor {
            workers,
            sleep_sets: false,
            dependence: DependenceMode::Regular,
        }
        .explore(&program, &cfg);
        assert_eq!(
            par.unique_states,
            dfs.unique_states,
            "parallel DPOR (workers={workers}) missed states on {}",
            program.name()
        );
        assert_eq!(
            par.unique_hbrs,
            dfs.unique_hbrs,
            "parallel DPOR (workers={workers}) missed HBR classes on {}",
            program.name()
        );
    }
}

#[test]
fn unlock_fault_shift_keeps_dfs_parity() {
    assert_dfs_parity(UNLOCK_FAULT_SHIFT);
}

#[test]
fn fault_between_workers_keeps_dfs_parity() {
    assert_dfs_parity(FAULT_BETWEEN);
}

#[test]
fn double_fault_keeps_dfs_parity() {
    assert_dfs_parity(DOUBLE_FAULT);
}

#[test]
fn sleep_sets_keep_bug_parity_under_faults() {
    // The sleep-set mode is held to its weaker contract: every fault that
    // DFS can reach is still reported.
    for source in [UNLOCK_FAULT_SHIFT, FAULT_BETWEEN, DOUBLE_FAULT] {
        let program = Program::parse(source).unwrap();
        let cfg = ExploreConfig::with_limit(1_000_000);
        let dfs = lazylocks::DfsEnumeration.explore(&program, &cfg);
        let sleep = Dpor {
            sleep_sets: true,
            dependence: DependenceMode::Regular,
        }
        .explore(&program, &cfg);
        assert_eq!(
            sleep.faulted_schedules > 0,
            dfs.faulted_schedules > 0,
            "sleep-set DPOR lost fault parity on {}",
            program.name()
        );
        assert!(sleep.schedules <= dfs.schedules);
    }
}
